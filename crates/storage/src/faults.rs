//! Fault-injection seam for the resilient serving runtime's chaos suite.
//!
//! Mirrors the [`sync`](crate::sync) seam's philosophy: production code
//! calls the hooks unconditionally, and the *meaning* of a hook is decided
//! at compile time. Outside `RUSTFLAGS="--cfg ucq_fault_inject"` every
//! hook is an empty `#[inline]` function — zero branches on the hot
//! paths, and the chaos test suite compiles to nothing. With the cfg on,
//! the hooks consult a process-global [`FaultPlan`] and a per-thread
//! *armed* flag, so a chaos harness can target specific requests (run
//! them under [`armed`]) while concurrent non-faulted requests stay
//! untouched — the suite's oracle-equality assertions depend on that.
//!
//! Three fault kinds, each triggered deterministically every N armed hook
//! visits (process-wide counter, so a mix of armed requests shares one
//! schedule):
//!
//! - **panics** at probe/decode sites — exercises `catch_unwind` panic
//!   isolation and lock-poison recovery ([`sync::lock_unpoisoned`]);
//! - **per-block delays** at probe/decode sites — exercises deadline
//!   budgets (a delayed block must still terminate the request within one
//!   block past its deadline);
//! - **forced overflow-overlay misses** at the intern/lookup sites —
//!   skips the lock-free frozen-dictionary fast path so the request takes
//!   the mutex-guarded overlay slow path. Semantically a no-op (the
//!   overlay re-checks the frozen dictionary under the lock), so faulted
//!   requests still produce oracle-identical answers while hammering the
//!   lock under load.
//!
//! [`sync::lock_unpoisoned`]: crate::sync::lock_unpoisoned

/// A deterministic fault schedule; `0` disables a fault kind.
///
/// "Every N" counts *armed hook visits* of the matching kind across the
/// whole process, not per thread — under a worker pool the schedule is
/// deterministic in aggregate (exactly `visits / n` faults fire), while
/// which request absorbs each fault depends on the interleaving, which is
/// exactly the nondeterminism a chaos suite wants to range over.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Panic at every Nth armed probe/decode hook visit.
    pub panic_every: u64,
    /// Sleep at every Nth armed probe/decode hook visit…
    pub delay_every: u64,
    /// …for this many microseconds.
    pub delay_micros: u64,
    /// Force every Nth armed intern/lookup to miss the frozen dictionary
    /// and take the overlay lock.
    pub overlay_miss_every: u64,
}

/// Counters of faults actually injected since the last [`install`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Panics thrown by [`on_probe`]/[`on_decode`].
    pub panics: u64,
    /// Delays injected by [`on_probe`]/[`on_decode`].
    pub delays: u64,
    /// Frozen-dictionary hits converted to overlay misses.
    pub forced_misses: u64,
}

/// Message carried by every injected panic (chaos assertions match on it).
pub const INJECTED_PANIC_MSG: &str = "ucq_fault_inject: injected panic";

#[cfg(ucq_fault_inject)]
mod imp {
    use super::{FaultCounters, FaultPlan, INJECTED_PANIC_MSG};
    use std::cell::Cell;
    // Plain std atomics on purpose: the fault schedule is bookkeeping, not
    // protocol state, and must not become decision points under a
    // (hypothetical) combined model-check + fault-inject build.
    use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

    static PANIC_EVERY: AtomicU64 = AtomicU64::new(0);
    static DELAY_EVERY: AtomicU64 = AtomicU64::new(0);
    static DELAY_MICROS: AtomicU64 = AtomicU64::new(0);
    static MISS_EVERY: AtomicU64 = AtomicU64::new(0);

    /// Armed probe/decode hook visits (drives panic + delay schedules).
    static OP_VISITS: AtomicU64 = AtomicU64::new(0);
    /// Armed intern/lookup hook visits (drives the miss schedule).
    static MISS_VISITS: AtomicU64 = AtomicU64::new(0);

    static PANICS: AtomicU64 = AtomicU64::new(0);
    static DELAYS: AtomicU64 = AtomicU64::new(0);
    static FORCED_MISSES: AtomicU64 = AtomicU64::new(0);

    thread_local! {
        static ARMED: Cell<bool> = const { Cell::new(false) };
    }

    pub fn install(plan: FaultPlan) {
        PANIC_EVERY.store(plan.panic_every, Relaxed);
        DELAY_EVERY.store(plan.delay_every, Relaxed);
        DELAY_MICROS.store(plan.delay_micros, Relaxed);
        MISS_EVERY.store(plan.overlay_miss_every, Relaxed);
        OP_VISITS.store(0, Relaxed);
        MISS_VISITS.store(0, Relaxed);
        PANICS.store(0, Relaxed);
        DELAYS.store(0, Relaxed);
        FORCED_MISSES.store(0, Relaxed);
    }

    pub fn clear() {
        install(FaultPlan::default());
    }

    pub fn injected() -> FaultCounters {
        FaultCounters {
            panics: PANICS.load(Relaxed),
            delays: DELAYS.load(Relaxed),
            forced_misses: FORCED_MISSES.load(Relaxed),
        }
    }

    pub fn is_armed() -> bool {
        ARMED.with(|a| a.get())
    }

    /// Restores the previous armed state even when `f` unwinds (injected
    /// panics do exactly that).
    struct ArmGuard(bool);
    impl Drop for ArmGuard {
        fn drop(&mut self) {
            ARMED.with(|a| a.set(self.0));
        }
    }

    pub fn armed<R>(f: impl FnOnce() -> R) -> R {
        let prev = ARMED.with(|a| a.replace(true));
        let _restore = ArmGuard(prev);
        f()
    }

    fn hook() {
        if !is_armed() {
            return;
        }
        let n = OP_VISITS.fetch_add(1, Relaxed) + 1;
        let every = PANIC_EVERY.load(Relaxed);
        if every != 0 && n.is_multiple_of(every) {
            PANICS.fetch_add(1, Relaxed);
            panic!("{INJECTED_PANIC_MSG}");
        }
        let every = DELAY_EVERY.load(Relaxed);
        if every != 0 && n.is_multiple_of(every) {
            DELAYS.fetch_add(1, Relaxed);
            std::thread::sleep(std::time::Duration::from_micros(DELAY_MICROS.load(Relaxed)));
        }
    }

    pub fn on_probe() {
        hook();
    }

    pub fn on_decode() {
        hook();
    }

    pub fn force_overlay_miss() -> bool {
        if !is_armed() {
            return false;
        }
        let every = MISS_EVERY.load(Relaxed);
        if every == 0 {
            return false;
        }
        let n = MISS_VISITS.fetch_add(1, Relaxed) + 1;
        if n.is_multiple_of(every) {
            FORCED_MISSES.fetch_add(1, Relaxed);
            true
        } else {
            false
        }
    }
}

#[cfg(not(ucq_fault_inject))]
mod imp {
    use super::{FaultCounters, FaultPlan};

    /// No-op without `--cfg ucq_fault_inject`.
    #[inline(always)]
    pub fn install(_plan: FaultPlan) {}

    /// No-op without `--cfg ucq_fault_inject`.
    #[inline(always)]
    pub fn clear() {}

    /// Always zero without `--cfg ucq_fault_inject`.
    #[inline(always)]
    pub fn injected() -> FaultCounters {
        FaultCounters::default()
    }

    /// Always `false` without `--cfg ucq_fault_inject`.
    #[inline(always)]
    pub fn is_armed() -> bool {
        false
    }

    /// Runs `f` directly without `--cfg ucq_fault_inject`.
    #[inline(always)]
    pub fn armed<R>(f: impl FnOnce() -> R) -> R {
        f()
    }

    /// Empty without `--cfg ucq_fault_inject`.
    #[inline(always)]
    pub fn on_probe() {}

    /// Empty without `--cfg ucq_fault_inject`.
    #[inline(always)]
    pub fn on_decode() {}

    /// Always `false` without `--cfg ucq_fault_inject`.
    #[inline(always)]
    pub fn force_overlay_miss() -> bool {
        false
    }
}

pub use imp::{armed, clear, force_overlay_miss, injected, install, is_armed, on_decode, on_probe};

#[cfg(all(test, not(ucq_fault_inject)))]
mod tests {
    use super::*;

    #[test]
    fn hooks_are_inert_without_the_cfg() {
        install(FaultPlan {
            panic_every: 1,
            delay_every: 1,
            delay_micros: 1,
            overlay_miss_every: 1,
        });
        let r = armed(|| {
            on_probe();
            on_decode();
            assert!(!force_overlay_miss());
            assert!(!is_armed());
            7
        });
        assert_eq!(r, 7);
        assert_eq!(injected(), FaultCounters::default());
        clear();
    }
}

#[cfg(all(test, ucq_fault_inject))]
mod tests {
    use super::*;

    /// The plan and its counters are process-global; serialize the tests
    /// that install competing plans. (A plain std mutex, not the seam
    /// type: test scaffolding must not become a modeled decision point.)
    static PLAN_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn serialize() -> std::sync::MutexGuard<'static, ()> {
        match PLAN_LOCK.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    #[test]
    fn unarmed_threads_never_fault() {
        let _serial = serialize();
        install(FaultPlan {
            panic_every: 1,
            delay_every: 1,
            delay_micros: 1,
            overlay_miss_every: 1,
        });
        on_probe();
        on_decode();
        assert!(!force_overlay_miss());
        clear();
    }

    #[test]
    fn armed_scope_schedules_deterministically() {
        let _serial = serialize();
        install(FaultPlan {
            overlay_miss_every: 2,
            ..FaultPlan::default()
        });
        let hits: Vec<bool> = armed(|| (0..4).map(|_| force_overlay_miss()).collect());
        assert_eq!(hits, vec![false, true, false, true]);
        assert_eq!(injected().forced_misses, 2);
        clear();
    }

    #[test]
    fn armed_flag_restored_after_unwind() {
        let _serial = serialize();
        install(FaultPlan {
            panic_every: 1,
            ..FaultPlan::default()
        });
        let err = std::panic::catch_unwind(|| armed(on_probe));
        assert!(err.is_err(), "panic_every=1 must panic on the first visit");
        assert!(!is_armed(), "armed flag leaked past the unwound scope");
        assert_eq!(injected().panics, 1);
        clear();
    }
}
