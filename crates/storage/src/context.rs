//! Per-instance evaluation contexts: one dictionary, one set of caches.
//!
//! Every evaluation pipeline in the workspace (Algorithm 1, the Theorem 12
//! union pipeline, the CDY membership tester, the naive baseline) used to
//! re-intern, re-normalize and re-index the same stored relations once per
//! member CQ and once per call. [`EvalContext`] is the session object that
//! makes that work shared:
//!
//! * a [`Dictionary`] interning all values seen by the session;
//! * an interned-relation cache: the columnar [`IdRel`] mirror of each
//!   stored [`Relation`], built once per relation;
//! * a derived-relation cache: atom-normalized projections (sorted columns,
//!   repeated-variable filtering) keyed by `(relation, signature)` — shared
//!   whenever two atoms, possibly in *different* member CQs, read the same
//!   relation with the same argument shape;
//! * an [`IndexCache`]: [`HashIndex`]es keyed by `(relation, key_cols)`,
//!   shared across member CQs and across repeated evaluations.
//!
//! Relations are identified by the address of their shared
//! [`Arc<Relation>`] handle (instances hand out [`Arc`]s; overlay instances
//! share them), and every cache entry holds a clone of the `Arc`, so an
//! address can never be reused while it is a cache key.
//!
//! Contexts have a two-phase lifecycle. During the **build phase** an
//! `EvalContext` guards its state with an (uncontended) mutex, so it is
//! `Send + Sync` and the parallel preprocessing helpers can feed it.
//! [`EvalContext::freeze`] then snapshots the dictionary and caches into an
//! immutable [`crate::FrozenContext`] for the **serve phase**: reads on the
//! frozen snapshot take no lock at all, so any number of enumeration
//! threads can decode, probe and dedup against it concurrently (see
//! [`crate::CtxView`]).

use crate::dictionary::{Dictionary, ValueId};
use crate::frozen::FrozenContext;
use crate::hash::FastMap;
use crate::idrel::IdRel;
use crate::index::HashIndex;
use crate::key::InlineKey;
use crate::relation::Relation;
use crate::stats::RelStats;
use crate::sync::{lock_unpoisoned, Mutex, MutexGuard};
use crate::tuple::Tuple;
use crate::value::Value;
use std::any::Any;
use std::fmt;
use std::sync::Arc;

/// Cache-hit/miss counters (diagnostics; also used by tests to assert
/// sharing actually happens).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ContextStats {
    /// Interned-relation cache hits.
    pub interned_hits: usize,
    /// Interned-relation cache misses (builds).
    pub interned_builds: usize,
    /// Derived-relation cache hits.
    pub derived_hits: usize,
    /// Derived-relation cache misses (builds).
    pub derived_builds: usize,
    /// Index cache hits.
    pub index_hits: usize,
    /// Index cache misses (builds).
    pub index_builds: usize,
}

/// A cache key: relation identity (pinned `Arc` address) plus key columns.
pub(crate) type IndexKey = (usize, Box<[usize]>);
/// A cache entry: the pinning handle and the shared index.
pub(crate) type IndexEntry = (Arc<IdRel>, Arc<HashIndex>);
/// A stats-cache entry: the pinning handle and the shared stats.
pub(crate) type StatsEntry = (Arc<IdRel>, Arc<RelStats>);
/// A plan-cache key: `(query fingerprint, stats epoch)`.
pub(crate) type PlanKey = (u64, u64);

/// A type-erased cached plan. The planner lives downstream of storage, so
/// the context stores plans as `Arc<dyn Any>` and the planner downcasts on
/// retrieval; this wrapper exists only to give the cache maps a `Debug`
/// impl.
#[derive(Clone)]
pub(crate) struct PlanSlot(pub(crate) Arc<dyn Any + Send + Sync>);

impl fmt::Debug for PlanSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("PlanSlot(..)")
    }
}

/// An index cache: `(relation identity, key columns) → Arc<HashIndex>`.
///
/// Requesting the same `(relation, key_cols)` twice returns the *same*
/// index object (`Arc::ptr_eq`), so a union's member pipelines and repeated
/// session evaluations share one physical index.
#[derive(Debug, Default)]
pub struct IndexCache {
    map: FastMap<IndexKey, IndexEntry>,
    hits: usize,
    builds: usize,
}

impl IndexCache {
    /// The index over `rel` keyed on `key_cols`, building it on first
    /// request.
    pub fn get_or_build(&mut self, rel: &Arc<IdRel>, key_cols: &[usize]) -> Arc<HashIndex> {
        let key = (Arc::as_ptr(rel) as usize, key_cols.into());
        if let Some((_pin, idx)) = self.map.get(&key) {
            self.hits += 1;
            return Arc::clone(idx);
        }
        self.builds += 1;
        let idx = Arc::new(HashIndex::build(rel, key_cols));
        self.map.insert(key, (Arc::clone(rel), Arc::clone(&idx)));
        idx
    }

    /// Number of cached indexes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// A copy of the cache map, for [`EvalContext::freeze`].
    pub(crate) fn snapshot(&self) -> FastMap<IndexKey, IndexEntry> {
        self.map.clone()
    }

    /// The cached index for `(rel_ptr, key_cols)` if one was already built
    /// (no build, no counter bump) — the stats harvester's peek.
    pub(crate) fn peek(&self, rel_ptr: usize, key_cols: &[usize]) -> Option<&Arc<HashIndex>> {
        self.map.get(&(rel_ptr, key_cols.into())).map(|(_p, i)| i)
    }
}

#[derive(Debug, Default)]
struct Inner {
    dict: Dictionary,
    /// `Arc<Relation>` address → interned columnar mirror. The held `Arc`
    /// pins the address.
    interned: FastMap<usize, (Arc<Relation>, Arc<IdRel>)>,
    /// `(Arc<Relation>` address, normalization signature) → derived
    /// relation. The base relation is pinned by `interned`.
    derived: FastMap<(usize, Box<[u32]>), Arc<IdRel>>,
    indexes: IndexCache,
    /// `Arc<IdRel>` address → cached [`RelStats`]. The held `Arc` pins the
    /// address.
    rel_stats: FastMap<usize, StatsEntry>,
    /// `(query fingerprint, stats epoch)` → type-erased plan.
    plans: FastMap<PlanKey, PlanSlot>,
    /// Bumped whenever the set of interned relations changes; plan-cache
    /// keys carry it, so a changed instance invalidates stale plans.
    epoch: u64,
    interned_hits: usize,
    interned_builds: usize,
    derived_hits: usize,
    derived_builds: usize,
}

/// The per-instance evaluation session state. See the module docs.
///
/// Build-phase contexts are `Send + Sync` (state behind an uncontended
/// mutex); the lock-free serve-phase view is [`crate::FrozenContext`],
/// produced by [`EvalContext::freeze`].
#[derive(Debug)]
pub struct EvalContext {
    inner: Mutex<Inner>,
}

impl EvalContext {
    /// A fresh context with an empty dictionary and empty caches.
    pub fn new() -> EvalContext {
        EvalContext {
            inner: Mutex::new(Inner {
                dict: Dictionary::new(),
                ..Inner::default()
            }),
        }
    }

    /// The state lock. Recovers from poisoning: every mutation below is an
    /// append-only cache insert, so a panicked peer cannot leave the maps
    /// in a torn state worth abandoning the session over.
    #[inline]
    fn lock(&self) -> MutexGuard<'_, Inner> {
        lock_unpoisoned(&self.inner, "the EvalContext interner/index state")
    }

    /// An immutable snapshot of the dictionary and all three caches — the
    /// serve-phase handle. Cheap relative to preprocessing: the cache maps
    /// hold `Arc`s (shallow clones) and the dictionary is one table copy.
    /// The snapshot and this context do not alias: values interned here
    /// *after* the freeze are unknown to the snapshot and vice versa.
    pub fn freeze(&self) -> Arc<FrozenContext> {
        let inner = self.lock();
        Arc::new(FrozenContext::from_parts(
            inner.dict.clone(),
            inner.interned.clone(),
            inner.derived.clone(),
            inner.indexes.snapshot(),
            inner.rel_stats.clone(),
            inner.plans.clone(),
            inner.epoch,
            ContextStats {
                interned_hits: inner.interned_hits,
                interned_builds: inner.interned_builds,
                derived_hits: inner.derived_hits,
                derived_builds: inner.derived_builds,
                index_hits: inner.indexes.hits,
                index_builds: inner.indexes.builds,
            },
        ))
    }

    /// Interns one value.
    #[inline]
    pub fn intern(&self, v: Value) -> ValueId {
        self.lock().dict.intern(v)
    }

    /// The id of `v` if the session has seen it (no allocation).
    #[inline]
    pub fn lookup(&self, v: Value) -> Option<ValueId> {
        self.lock().dict.lookup(v)
    }

    /// Decodes one id.
    #[inline]
    pub fn decode(&self, id: ValueId) -> Value {
        self.lock().dict.value(id)
    }

    /// Decodes a sequence of ids into an answer [`Tuple`] under a single
    /// dictionary lock.
    #[inline]
    pub fn decode_tuple<I: IntoIterator<Item = ValueId>>(&self, ids: I) -> Tuple {
        let inner = self.lock();
        Tuple(ids.into_iter().map(|id| inner.dict.value(id)).collect())
    }

    /// Decodes a flat run of id rows (`width` ids per row) into answer
    /// [`Tuple`]s under a **single** dictionary lock — the bulk analogue
    /// of [`EvalContext::decode_tuple`] for materialized answer tables.
    pub fn decode_rows(&self, width: usize, ids: &[ValueId]) -> Vec<Tuple> {
        let inner = self.lock();
        if width == 0 {
            return vec![Tuple::empty(); ids.len()];
        }
        debug_assert_eq!(ids.len() % width, 0, "partial row in flat table");
        ids.chunks_exact(width)
            .map(|row| Tuple(row.iter().map(|&id| inner.dict.value(id)).collect()))
            .collect()
    }

    /// Decodes an interned relation back to a row-major [`Relation`] under
    /// a single dictionary lock (answer-boundary only).
    pub fn decode_rel(&self, rel: &IdRel) -> Relation {
        rel.decode(&self.lock().dict)
    }

    /// Looks up every value of `row` into `out` (cleared first) without
    /// interning; returns `false` if any value is unknown to the session —
    /// in which case it cannot occur in any cached relation.
    pub fn lookup_row(&self, row: &[Value], out: &mut Vec<ValueId>) -> bool {
        let inner = self.lock();
        out.clear();
        for &v in row {
            match inner.dict.lookup(v) {
                Some(id) => out.push(id),
                None => return false,
            }
        }
        true
    }

    /// Interns a decoded row into an [`InlineKey`] (used for answer-side
    /// dedup without boxing small tuples).
    pub fn intern_key(&self, row: &[Value]) -> InlineKey {
        let mut inner = self.lock();
        let mut buf = [ValueId::BOTTOM; InlineKey::INLINE];
        if row.len() <= InlineKey::INLINE {
            for (slot, &v) in buf.iter_mut().zip(row) {
                *slot = inner.dict.intern(v);
            }
            InlineKey::Inline {
                len: row.len() as u8,
                ids: buf,
            }
        } else {
            InlineKey::Spilled(row.iter().map(|&v| inner.dict.intern(v)).collect())
        }
    }

    /// The interned columnar mirror of `rel`, built on first request.
    pub fn interned_rel(&self, rel: &Arc<Relation>) -> Arc<IdRel> {
        let key = Arc::as_ptr(rel) as usize;
        let mut inner = self.lock();
        if let Some(id_rel) = inner.interned.get(&key).map(|(_pin, r)| Arc::clone(r)) {
            inner.interned_hits += 1;
            return id_rel;
        }
        inner.interned_builds += 1;
        inner.epoch += 1;
        let built = {
            let inner = &mut *inner;
            Arc::new(IdRel::from_relation(rel, &mut inner.dict))
        };
        inner
            .interned
            .insert(key, (Arc::clone(rel), Arc::clone(&built)));
        built
    }

    /// Registers a pre-interned mirror for `rel`, so later
    /// [`EvalContext::interned_rel`] requests hit the cache instead of
    /// re-interning every cell. Used by pipelines that *produce* a
    /// relation on the id layer (Lemma 8 materialization) and hand the
    /// decoded value form to an instance: the ids are already under this
    /// context's dictionary, so the decode → re-intern round trip is pure
    /// waste. `id_rel` must be the row-for-row mirror of `rel` under this
    /// context's dictionary.
    pub fn register_interned(&self, rel: &Arc<Relation>, id_rel: Arc<IdRel>) {
        debug_assert_eq!(rel.len(), id_rel.len(), "mirror must match row count");
        let key = Arc::as_ptr(rel) as usize;
        let mut inner = self.lock();
        // No epoch bump: registrations are pipeline-produced mirrors of
        // derived data (Lemma 8 materializations), not new base relations —
        // bumping here would invalidate the plan cache on every prepare.
        inner.interned.insert(key, (Arc::clone(rel), id_rel));
    }

    /// A relation derived from `rel` by a pure id-level transformation
    /// described by `sig` (e.g. an atom-normalization signature): cached by
    /// `(relation, sig)`, built by `build` from the interned mirror on
    /// first request.
    pub fn derived_rel(
        &self,
        rel: &Arc<Relation>,
        sig: &[u32],
        build: impl FnOnce(&IdRel) -> IdRel,
    ) -> Arc<IdRel> {
        let key = (Arc::as_ptr(rel) as usize, sig.into());
        if let Some(found) = {
            let mut inner = self.lock();
            let found = inner.derived.get(&key).cloned();
            if found.is_some() {
                inner.derived_hits += 1;
            }
            found
        } {
            return found;
        }
        // Build outside the lock: `build` is pure id-level work on the
        // interned base, but callers may re-enter the context (e.g. for
        // nested lookups).
        let base = self.interned_rel(rel);
        let built = Arc::new(build(&base));
        let mut inner = self.lock();
        inner.derived_builds += 1;
        Arc::clone(inner.derived.entry(key).or_insert(built))
    }

    /// The cached index over `rel` keyed on `key_cols` (see [`IndexCache`]).
    pub fn index(&self, rel: &Arc<IdRel>, key_cols: &[usize]) -> Arc<HashIndex> {
        self.lock().indexes.get_or_build(rel, key_cols)
    }

    /// The cached [`RelStats`] of `rel`, computed on first request. Columns
    /// with an already-built single-column index are harvested straight off
    /// its CSR offsets; the rest are counted in one pass per column.
    pub fn rel_stats(&self, rel: &Arc<IdRel>) -> Arc<RelStats> {
        let key = Arc::as_ptr(rel) as usize;
        let mut inner = self.lock();
        if let Some((_pin, s)) = inner.rel_stats.get(&key) {
            return Arc::clone(s);
        }
        let stats = {
            let indexes = &inner.indexes;
            Arc::new(RelStats::compute_with(rel, |c| {
                indexes
                    .peek(key, &[c])
                    .map(|i| RelStats::column_from_index(i))
            }))
        };
        inner
            .rel_stats
            .insert(key, (Arc::clone(rel), Arc::clone(&stats)));
        stats
    }

    /// The current stats epoch: bumped whenever a *new* base relation is
    /// interned, so `(fingerprint, epoch)` plan-cache keys go stale the
    /// moment the underlying instance data changes. Registrations of
    /// derived mirrors do not bump it.
    pub fn stats_epoch(&self) -> u64 {
        self.lock().epoch
    }

    /// The cached plan stored under `(fingerprint, epoch)`, if any. The
    /// planner downcasts the returned `Arc<dyn Any>` to its own plan type.
    pub fn cached_plan(&self, fingerprint: u64, epoch: u64) -> Option<Arc<dyn Any + Send + Sync>> {
        self.lock()
            .plans
            .get(&(fingerprint, epoch))
            .map(|s| Arc::clone(&s.0))
    }

    /// Stores a type-erased plan under `(fingerprint, epoch)`.
    pub fn store_plan(&self, fingerprint: u64, epoch: u64, plan: Arc<dyn Any + Send + Sync>) {
        self.lock()
            .plans
            .insert((fingerprint, epoch), PlanSlot(plan));
    }

    /// Number of distinct values interned so far.
    pub fn dict_len(&self) -> usize {
        self.lock().dict.len()
    }

    /// Snapshot of the cache counters.
    pub fn stats(&self) -> ContextStats {
        let inner = self.lock();
        ContextStats {
            interned_hits: inner.interned_hits,
            interned_builds: inner.interned_builds,
            derived_hits: inner.derived_hits,
            derived_builds: inner.derived_builds,
            index_hits: inner.indexes.hits,
            index_builds: inner.indexes.builds,
        }
    }
}

impl Default for EvalContext {
    fn default() -> EvalContext {
        EvalContext::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shared_pairs(pairs: &[(i64, i64)]) -> Arc<Relation> {
        Arc::new(Relation::from_pairs(pairs.iter().copied()))
    }

    #[test]
    fn interned_rel_is_cached() {
        let ctx = EvalContext::new();
        let rel = shared_pairs(&[(1, 2), (3, 4)]);
        let a = ctx.interned_rel(&rel);
        let b = ctx.interned_rel(&rel);
        assert!(Arc::ptr_eq(&a, &b), "same physical IdRel");
        assert_eq!(ctx.stats().interned_builds, 1);
        assert_eq!(ctx.stats().interned_hits, 1);
    }

    #[test]
    fn index_cache_returns_same_object() {
        let ctx = EvalContext::new();
        let rel = shared_pairs(&[(1, 2), (1, 3), (2, 4)]);
        let id_rel = ctx.interned_rel(&rel);
        let a = ctx.index(&id_rel, &[0]);
        let b = ctx.index(&id_rel, &[0]);
        assert!(Arc::ptr_eq(&a, &b), "repeated requests share one index");
        let c = ctx.index(&id_rel, &[1]);
        assert!(!Arc::ptr_eq(&a, &c), "different key_cols, different index");
        let s = ctx.stats();
        assert_eq!(s.index_builds, 2);
        assert_eq!(s.index_hits, 1);
    }

    #[test]
    fn derived_rel_cached_by_signature() {
        let ctx = EvalContext::new();
        let rel = shared_pairs(&[(1, 1), (1, 2)]);
        let build_calls = std::cell::Cell::new(0);
        for _ in 0..3 {
            ctx.derived_rel(&rel, &[0, 0], |base| {
                build_calls.set(build_calls.get() + 1);
                base.project_dedup(&[0])
            });
        }
        assert_eq!(build_calls.get(), 1);
        let other = ctx.derived_rel(&rel, &[0, 1], |base| base.clone());
        assert_eq!(other.arity(), 2);
        assert_eq!(ctx.stats().derived_builds, 2);
    }

    #[test]
    fn distinct_relations_do_not_collide() {
        let ctx = EvalContext::new();
        let a = shared_pairs(&[(1, 2)]);
        let b = shared_pairs(&[(3, 4), (5, 6)]);
        assert_eq!(ctx.interned_rel(&a).len(), 1);
        assert_eq!(ctx.interned_rel(&b).len(), 2);
    }

    #[test]
    fn lookup_row_rejects_unknown_values() {
        let ctx = EvalContext::new();
        let rel = shared_pairs(&[(1, 2)]);
        ctx.interned_rel(&rel);
        let mut buf = Vec::new();
        assert!(ctx.lookup_row(&[Value::Int(1), Value::Int(2)], &mut buf));
        assert_eq!(buf.len(), 2);
        assert!(!ctx.lookup_row(&[Value::Int(99)], &mut buf));
    }

    #[test]
    fn rel_stats_cached_and_harvested() {
        let ctx = EvalContext::new();
        let rel = shared_pairs(&[(1, 10), (1, 20), (2, 10)]);
        let id_rel = ctx.interned_rel(&rel);
        // Build a single-column index first so the harvest path is hit.
        ctx.index(&id_rel, &[0]);
        let a = ctx.rel_stats(&id_rel);
        let b = ctx.rel_stats(&id_rel);
        assert!(Arc::ptr_eq(&a, &b), "stats cached by relation identity");
        assert_eq!(a.rows, 3);
        assert_eq!(a.distinct, vec![2, 2]);
        assert_eq!(a.max_fanout, vec![2, 2]);
    }

    #[test]
    fn epoch_bumps_on_intern_but_not_register() {
        let ctx = EvalContext::new();
        let e0 = ctx.stats_epoch();
        let rel = shared_pairs(&[(1, 2)]);
        ctx.interned_rel(&rel);
        let e1 = ctx.stats_epoch();
        assert!(e1 > e0, "interning a new relation bumps the epoch");
        ctx.interned_rel(&rel);
        assert_eq!(ctx.stats_epoch(), e1, "cache hits leave the epoch alone");
        let other = shared_pairs(&[(3, 4)]);
        let mirror = ctx.interned_rel(&other);
        let e2 = ctx.stats_epoch();
        ctx.register_interned(&other, mirror);
        assert_eq!(
            ctx.stats_epoch(),
            e2,
            "registering a derived mirror must not invalidate cached plans"
        );
    }

    #[test]
    fn plan_cache_roundtrip() {
        let ctx = EvalContext::new();
        assert!(ctx.cached_plan(7, 0).is_none());
        let plan: Arc<dyn std::any::Any + Send + Sync> = Arc::new(42usize);
        ctx.store_plan(7, 0, plan);
        let got = ctx.cached_plan(7, 0).expect("stored plan");
        assert_eq!(*got.downcast::<usize>().unwrap(), 42);
        assert!(ctx.cached_plan(7, 1).is_none(), "epoch is part of the key");
        assert!(ctx.cached_plan(8, 0).is_none(), "fingerprint is too");
    }

    #[test]
    fn decode_tuple_roundtrips() {
        let ctx = EvalContext::new();
        let ids = [ctx.intern(Value::Int(5)), ctx.intern(Value::Bottom)];
        let t = ctx.decode_tuple(ids.iter().copied());
        assert_eq!(t, Tuple(vec![Value::Int(5), Value::Bottom].into()));
    }

    #[test]
    fn intern_key_matches_lookup() {
        let ctx = EvalContext::new();
        let k1 = ctx.intern_key(&[Value::Int(1), Value::Int(2)]);
        let k2 = ctx.intern_key(&[Value::Int(1), Value::Int(2)]);
        assert_eq!(k1, k2);
        let k3 = ctx.intern_key(&[Value::Int(2), Value::Int(1)]);
        assert_ne!(k1, k3);
        // Long keys spill but still compare correctly.
        let long: Vec<Value> = (0..6).map(Value::Int).collect();
        assert_eq!(ctx.intern_key(&long), ctx.intern_key(&long));
    }
}
