//! Per-instance evaluation contexts: one dictionary, one set of caches.
//!
//! Every evaluation pipeline in the workspace (Algorithm 1, the Theorem 12
//! union pipeline, the CDY membership tester, the naive baseline) used to
//! re-intern, re-normalize and re-index the same stored relations once per
//! member CQ and once per call. [`EvalContext`] is the session object that
//! makes that work shared:
//!
//! * a [`Dictionary`] interning all values seen by the session;
//! * an interned-relation cache: the columnar [`IdRel`] mirror of each
//!   stored [`Relation`], built once per relation;
//! * a derived-relation cache: atom-normalized projections (sorted columns,
//!   repeated-variable filtering) keyed by `(relation, signature)` — shared
//!   whenever two atoms, possibly in *different* member CQs, read the same
//!   relation with the same argument shape;
//! * an [`IndexCache`]: [`HashIndex`]es keyed by `(relation, key_cols)`,
//!   shared across member CQs and across repeated evaluations.
//!
//! Relations are identified by the address of their shared
//! [`Arc<Relation>`] handle (instances hand out [`Arc`]s; overlay instances
//! share them), and every cache entry holds a clone of the `Arc`, so an
//! address can never be reused while it is a cache key.
//!
//! Contexts have a two-phase lifecycle. During the **build phase** an
//! `EvalContext` guards its state with an (uncontended) mutex, so it is
//! `Send + Sync` and the parallel preprocessing helpers can feed it.
//! [`EvalContext::freeze`] then snapshots the dictionary and caches into an
//! immutable [`crate::FrozenContext`] for the **serve phase**: reads on the
//! frozen snapshot take no lock at all, so any number of enumeration
//! threads can decode, probe and dedup against it concurrently (see
//! [`crate::CtxView`]).

use crate::dictionary::{Dictionary, ValueId};
use crate::frozen::FrozenContext;
use crate::hash::FastMap;
use crate::idrel::{normalize_ranked, normalize_ranked_append, IdRel, IdSet};
use crate::index::{HashIndex, RowSet};
use crate::key::InlineKey;
use crate::relation::Relation;
use crate::stats::RelStats;
use crate::sync::{lock_unpoisoned, Mutex, MutexGuard};
use crate::tuple::Tuple;
use crate::value::Value;
use std::any::Any;
use std::fmt;
use std::sync::Arc;

/// Cache-hit/miss counters (diagnostics; also used by tests to assert
/// sharing actually happens).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ContextStats {
    /// Interned-relation cache hits.
    pub interned_hits: usize,
    /// Interned-relation cache misses (builds).
    pub interned_builds: usize,
    /// Derived-relation cache hits.
    pub derived_hits: usize,
    /// Derived-relation cache misses (builds).
    pub derived_builds: usize,
    /// Index cache hits.
    pub index_hits: usize,
    /// Index cache misses (builds).
    pub index_builds: usize,
}

/// Counters over the session's delta-ingestion traffic
/// ([`EvalContext::insert_rows`]/[`EvalContext::delete_rows`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// `insert_rows` calls that changed anything.
    pub inserts: usize,
    /// `delete_rows` calls that changed anything.
    pub deletes: usize,
    /// Rows appended across all deltas.
    pub rows_inserted: usize,
    /// Rows removed (value level) across all deletes.
    pub rows_deleted: usize,
    /// Cached indexes carried to a successor mirror by CSR merge instead
    /// of being rebuilt.
    pub indexes_merged: usize,
    /// Cached normalizations carried to a successor mirror by delta-append
    /// ([`normalize_ranked_append`]) instead of being rebuilt.
    pub derived_carried: usize,
    /// Stats-epoch bumps forced by cumulative churn crossing the
    /// re-planning threshold.
    pub epoch_bumps: usize,
}

/// Per-relation churn diagnostics read off the interned mirror — the
/// numbers `ucq explain` reports so segment/tombstone bloat is observable
/// before compaction ships.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RelChurn {
    /// CSR/columnar segments (base build + appended deltas).
    pub segments: usize,
    /// Live (visible) rows.
    pub live_rows: usize,
    /// Tombstoned rows still occupying physical slots.
    pub dead_rows: usize,
    /// `dead / (live + dead)`.
    pub tombstone_fraction: f64,
}

/// Cumulative churn on one relation lineage since its last stats-epoch
/// bump; when `churned` reaches [`CHURN_REPLAN_PERCENT`] of `base`, the
/// epoch bumps so cached plans go stale and the planner re-costs against
/// fresh statistics.
#[derive(Clone, Copy, Debug, Default)]
struct IngestLedger {
    churned: usize,
    base: usize,
}

/// Re-plan once cumulative churn reaches this percentage of the base
/// cardinality the current plan generation was costed against.
pub const CHURN_REPLAN_PERCENT: usize = 25;

/// A cache key: relation identity (pinned `Arc` address) plus key columns.
pub(crate) type IndexKey = (usize, Box<[usize]>);
/// A cache entry: the pinning handle and the shared index.
pub(crate) type IndexEntry = (Arc<IdRel>, Arc<HashIndex>);
/// A stats-cache entry: the pinning handle and the shared stats.
pub(crate) type StatsEntry = (Arc<IdRel>, Arc<RelStats>);
/// A plan-cache key: `(query fingerprint, stats epoch)`.
pub(crate) type PlanKey = (u64, u64);

/// A type-erased cached plan. The planner lives downstream of storage, so
/// the context stores plans as `Arc<dyn Any>` and the planner downcasts on
/// retrieval; this wrapper exists only to give the cache maps a `Debug`
/// impl.
#[derive(Clone)]
pub(crate) struct PlanSlot(pub(crate) Arc<dyn Any + Send + Sync>);

impl fmt::Debug for PlanSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("PlanSlot(..)")
    }
}

/// An index cache: `(relation identity, key columns) → Arc<HashIndex>`.
///
/// Requesting the same `(relation, key_cols)` twice returns the *same*
/// index object (`Arc::ptr_eq`), so a union's member pipelines and repeated
/// session evaluations share one physical index.
#[derive(Debug, Default)]
pub struct IndexCache {
    map: FastMap<IndexKey, IndexEntry>,
    hits: usize,
    builds: usize,
}

impl IndexCache {
    /// The index over `rel` keyed on `key_cols`, building it on first
    /// request.
    pub fn get_or_build(&mut self, rel: &Arc<IdRel>, key_cols: &[usize]) -> Arc<HashIndex> {
        let key = (Arc::as_ptr(rel) as usize, key_cols.into());
        if let Some((_pin, idx)) = self.map.get(&key) {
            self.hits += 1;
            return Arc::clone(idx);
        }
        self.builds += 1;
        let idx = Arc::new(HashIndex::build(rel, key_cols));
        self.map.insert(key, (Arc::clone(rel), Arc::clone(&idx)));
        idx
    }

    /// Number of cached indexes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// A copy of the cache map, for [`EvalContext::freeze`].
    pub(crate) fn snapshot(&self) -> FastMap<IndexKey, IndexEntry> {
        self.map.clone()
    }

    /// The cached index for `(rel_ptr, key_cols)` if one was already built
    /// (no build, no counter bump) — the stats harvester's peek.
    pub(crate) fn peek(&self, rel_ptr: usize, key_cols: &[usize]) -> Option<&Arc<HashIndex>> {
        self.map.get(&(rel_ptr, key_cols.into())).map(|(_p, i)| i)
    }

    /// Carries every cached index of the mirror at `old_ptr` over to its
    /// churned successor `new_rel` via [`HashIndex::merge_appended`] —
    /// O(Δ + arena) per index, re-hashing only delta rows. The old
    /// entries are dropped from this (build-phase) cache; frozen epochs
    /// hold their own snapshot of the map, so in-flight readers keep
    /// probing the old indexes untouched. Returns the number of indexes
    /// merged.
    pub(crate) fn reseed_merged(
        &mut self,
        old_ptr: usize,
        new_rel: &Arc<IdRel>,
        old_rows: usize,
    ) -> usize {
        let keys: Vec<IndexKey> = self
            .map
            .keys()
            .filter(|(p, _)| *p == old_ptr)
            .cloned()
            .collect();
        let new_ptr = Arc::as_ptr(new_rel) as usize;
        let mut merged = 0usize;
        for key in keys {
            let (_pin, idx) = self.map.remove(&key).expect("key listed above");
            let next = Arc::new(idx.merge_appended(new_rel, old_rows));
            self.map
                .insert((new_ptr, key.1), (Arc::clone(new_rel), next));
            merged += 1;
        }
        merged
    }
}

/// A cached normalization: the derived relation, plus — for entries built
/// through [`EvalContext::normalized_rel`] — the dedup set that makes the
/// entry delta-appendable when its base relation churns. Closure-built
/// entries ([`EvalContext::derived_rel`]) carry `None`.
type DerivedEntry = (Arc<IdRel>, Option<Arc<IdSet>>);

#[derive(Debug, Default)]
struct Inner {
    dict: Dictionary,
    /// The most recent frozen snapshot of the dictionary. The dictionary
    /// is append-only, so an unchanged length means unchanged content:
    /// epoch re-freezes that interned no new values share this `Arc`
    /// instead of re-copying the whole table.
    dict_snapshot: Option<Arc<Dictionary>>,
    /// `Arc<Relation>` address → interned columnar mirror. The held `Arc`
    /// pins the address.
    interned: FastMap<usize, (Arc<Relation>, Arc<IdRel>)>,
    /// `(Arc<Relation>` address, normalization signature) → derived
    /// relation. The base relation is pinned by `interned`. Entries built
    /// through [`EvalContext::normalized_rel`] also keep their dedup set,
    /// which is what lets [`EvalContext::insert_rows`] carry them to a
    /// churned successor by re-normalizing only the delta segment
    /// ([`normalize_ranked_append`]); closure-built entries
    /// ([`EvalContext::derived_rel`]) have no set and are dropped on churn.
    derived: FastMap<(usize, Box<[u32]>), DerivedEntry>,
    indexes: IndexCache,
    /// `Arc<IdRel>` address → cached [`RelStats`]. The held `Arc` pins the
    /// address.
    rel_stats: FastMap<usize, StatsEntry>,
    /// `(query fingerprint, stats epoch)` → type-erased plan.
    plans: FastMap<PlanKey, PlanSlot>,
    /// Bumped whenever the set of interned relations changes; plan-cache
    /// keys carry it, so a changed instance invalidates stale plans.
    epoch: u64,
    /// Successor `Arc<Relation>` address → churn accumulated on that
    /// lineage since its last epoch bump.
    churn: FastMap<usize, IngestLedger>,
    ingest: IngestStats,
    interned_hits: usize,
    interned_builds: usize,
    derived_hits: usize,
    derived_builds: usize,
}

impl Inner {
    /// Moves the churn ledger from `old_key` to `new_key`, adding
    /// `changed` churned rows. A fresh lineage starts from `base_before`
    /// (the pre-change live cardinality — what any cached plan was costed
    /// against). Crossing [`CHURN_REPLAN_PERCENT`] bumps the stats epoch
    /// and re-bases the ledger on `live_now`.
    fn note_churn(
        &mut self,
        old_key: usize,
        new_key: usize,
        changed: usize,
        base_before: usize,
        live_now: usize,
    ) {
        let mut led = self.churn.remove(&old_key).unwrap_or(IngestLedger {
            churned: 0,
            base: base_before,
        });
        led.churned += changed;
        if led.churned * 100 >= led.base.max(1) * CHURN_REPLAN_PERCENT {
            self.epoch += 1;
            self.ingest.epoch_bumps += 1;
            led = IngestLedger {
                churned: 0,
                base: live_now,
            };
        }
        self.churn.insert(new_key, led);
    }
}

/// The per-instance evaluation session state. See the module docs.
///
/// Build-phase contexts are `Send + Sync` (state behind an uncontended
/// mutex); the lock-free serve-phase view is [`crate::FrozenContext`],
/// produced by [`EvalContext::freeze`].
#[derive(Debug)]
pub struct EvalContext {
    inner: Mutex<Inner>,
}

impl EvalContext {
    /// A fresh context with an empty dictionary and empty caches.
    pub fn new() -> EvalContext {
        EvalContext {
            inner: Mutex::new(Inner {
                dict: Dictionary::new(),
                ..Inner::default()
            }),
        }
    }

    /// The state lock. Recovers from poisoning: every mutation below is an
    /// append-only cache insert, so a panicked peer cannot leave the maps
    /// in a torn state worth abandoning the session over.
    #[inline]
    fn lock(&self) -> MutexGuard<'_, Inner> {
        lock_unpoisoned(&self.inner, "the EvalContext interner/index state")
    }

    /// An immutable snapshot of the dictionary and all three caches — the
    /// serve-phase handle. Cheap relative to preprocessing: the cache maps
    /// hold `Arc`s (shallow clones) and the dictionary is one table copy,
    /// paid only when it actually grew since the previous freeze — the
    /// dictionary is append-only, so an unchanged length means unchanged
    /// content and an epoch re-freeze that interned nothing new shares the
    /// previous snapshot `Arc`. The snapshot and this context do not
    /// alias: values interned here *after* the freeze are unknown to the
    /// snapshot and vice versa.
    pub fn freeze(&self) -> Arc<FrozenContext> {
        let mut inner = self.lock();
        let dict = match &inner.dict_snapshot {
            Some(snap) if snap.len() == inner.dict.len() => Arc::clone(snap),
            _ => {
                let snap = Arc::new(inner.dict.clone());
                inner.dict_snapshot = Some(Arc::clone(&snap));
                snap
            }
        };
        // The frozen side never churns, so it keeps only the derived
        // relations, not their dedup sets.
        let derived = inner
            .derived
            .iter()
            .map(|(k, (r, _))| (k.clone(), Arc::clone(r)))
            .collect();
        Arc::new(FrozenContext::from_parts(
            dict,
            inner.interned.clone(),
            derived,
            inner.indexes.snapshot(),
            inner.rel_stats.clone(),
            inner.plans.clone(),
            inner.epoch,
            ContextStats {
                interned_hits: inner.interned_hits,
                interned_builds: inner.interned_builds,
                derived_hits: inner.derived_hits,
                derived_builds: inner.derived_builds,
                index_hits: inner.indexes.hits,
                index_builds: inner.indexes.builds,
            },
        ))
    }

    /// Interns one value.
    #[inline]
    pub fn intern(&self, v: Value) -> ValueId {
        self.lock().dict.intern(v)
    }

    /// The id of `v` if the session has seen it (no allocation).
    #[inline]
    pub fn lookup(&self, v: Value) -> Option<ValueId> {
        self.lock().dict.lookup(v)
    }

    /// Decodes one id.
    #[inline]
    pub fn decode(&self, id: ValueId) -> Value {
        self.lock().dict.value(id)
    }

    /// Decodes a sequence of ids into an answer [`Tuple`] under a single
    /// dictionary lock.
    #[inline]
    pub fn decode_tuple<I: IntoIterator<Item = ValueId>>(&self, ids: I) -> Tuple {
        let inner = self.lock();
        Tuple(ids.into_iter().map(|id| inner.dict.value(id)).collect())
    }

    /// Decodes a flat run of id rows (`width` ids per row) into answer
    /// [`Tuple`]s under a **single** dictionary lock — the bulk analogue
    /// of [`EvalContext::decode_tuple`] for materialized answer tables.
    pub fn decode_rows(&self, width: usize, ids: &[ValueId]) -> Vec<Tuple> {
        let inner = self.lock();
        if width == 0 {
            return vec![Tuple::empty(); ids.len()];
        }
        debug_assert_eq!(ids.len() % width, 0, "partial row in flat table");
        ids.chunks_exact(width)
            .map(|row| Tuple(row.iter().map(|&id| inner.dict.value(id)).collect()))
            .collect()
    }

    /// Decodes an interned relation back to a row-major [`Relation`] under
    /// a single dictionary lock (answer-boundary only).
    pub fn decode_rel(&self, rel: &IdRel) -> Relation {
        rel.decode(&self.lock().dict)
    }

    /// Looks up every value of `row` into `out` (cleared first) without
    /// interning; returns `false` if any value is unknown to the session —
    /// in which case it cannot occur in any cached relation.
    pub fn lookup_row(&self, row: &[Value], out: &mut Vec<ValueId>) -> bool {
        let inner = self.lock();
        out.clear();
        for &v in row {
            match inner.dict.lookup(v) {
                Some(id) => out.push(id),
                None => return false,
            }
        }
        true
    }

    /// Interns a decoded row into an [`InlineKey`] (used for answer-side
    /// dedup without boxing small tuples).
    pub fn intern_key(&self, row: &[Value]) -> InlineKey {
        let mut inner = self.lock();
        let mut buf = [ValueId::BOTTOM; InlineKey::INLINE];
        if row.len() <= InlineKey::INLINE {
            for (slot, &v) in buf.iter_mut().zip(row) {
                *slot = inner.dict.intern(v);
            }
            InlineKey::Inline {
                len: row.len() as u8,
                ids: buf,
            }
        } else {
            InlineKey::Spilled(row.iter().map(|&v| inner.dict.intern(v)).collect())
        }
    }

    /// The interned columnar mirror of `rel`, built on first request.
    pub fn interned_rel(&self, rel: &Arc<Relation>) -> Arc<IdRel> {
        let key = Arc::as_ptr(rel) as usize;
        let mut inner = self.lock();
        if let Some(id_rel) = inner.interned.get(&key).map(|(_pin, r)| Arc::clone(r)) {
            inner.interned_hits += 1;
            return id_rel;
        }
        inner.interned_builds += 1;
        inner.epoch += 1;
        let built = {
            let inner = &mut *inner;
            Arc::new(IdRel::from_relation(rel, &mut inner.dict))
        };
        inner
            .interned
            .insert(key, (Arc::clone(rel), Arc::clone(&built)));
        built
    }

    /// Registers a pre-interned mirror for `rel`, so later
    /// [`EvalContext::interned_rel`] requests hit the cache instead of
    /// re-interning every cell. Used by pipelines that *produce* a
    /// relation on the id layer (Lemma 8 materialization) and hand the
    /// decoded value form to an instance: the ids are already under this
    /// context's dictionary, so the decode → re-intern round trip is pure
    /// waste. `id_rel` must be the row-for-row mirror of `rel` under this
    /// context's dictionary.
    pub fn register_interned(&self, rel: &Arc<Relation>, id_rel: Arc<IdRel>) {
        debug_assert_eq!(
            rel.len(),
            id_rel.live_len(),
            "mirror must match live row count"
        );
        let key = Arc::as_ptr(rel) as usize;
        let mut inner = self.lock();
        // No epoch bump: registrations are pipeline-produced mirrors of
        // derived data (Lemma 8 materializations), not new base relations —
        // bumping here would invalidate the plan cache on every prepare.
        inner.interned.insert(key, (Arc::clone(rel), id_rel));
    }

    /// A relation derived from `rel` by a pure id-level transformation
    /// described by `sig` (e.g. an atom-normalization signature): cached by
    /// `(relation, sig)`, built by `build` from the interned mirror on
    /// first request.
    pub fn derived_rel(
        &self,
        rel: &Arc<Relation>,
        sig: &[u32],
        build: impl FnOnce(&IdRel) -> IdRel,
    ) -> Arc<IdRel> {
        let key = (Arc::as_ptr(rel) as usize, sig.into());
        if let Some(found) = {
            let mut inner = self.lock();
            let found = inner.derived.get(&key).map(|(r, _)| Arc::clone(r));
            if found.is_some() {
                inner.derived_hits += 1;
            }
            found
        } {
            return found;
        }
        // Build outside the lock: `build` is pure id-level work on the
        // interned base, but callers may re-enter the context (e.g. for
        // nested lookups).
        let base = self.interned_rel(rel);
        let built = Arc::new(build(&base));
        let mut inner = self.lock();
        inner.derived_builds += 1;
        Arc::clone(&inner.derived.entry(key).or_insert((built, None)).0)
    }

    /// The cached atom-normalization of `rel` under the rank signature
    /// `sig` ([`normalize_ranked`]): rows whose repeated positions agree,
    /// projected to one column per distinct rank, deduplicated. Shares the
    /// `(relation, sig)` cache with [`EvalContext::derived_rel`], but also
    /// keeps the dedup set, so [`EvalContext::insert_rows`] can carry the
    /// entry across a delta append by normalizing only the delta segment
    /// instead of re-hashing the whole relation.
    pub fn normalized_rel(&self, rel: &Arc<Relation>, sig: &[u32]) -> Arc<IdRel> {
        let key = (Arc::as_ptr(rel) as usize, sig.into());
        if let Some(found) = {
            let mut inner = self.lock();
            let found = inner.derived.get(&key).map(|(r, _)| Arc::clone(r));
            if found.is_some() {
                inner.derived_hits += 1;
            }
            found
        } {
            return found;
        }
        // Build outside the lock (`interned_rel` takes it internally).
        let base = self.interned_rel(rel);
        let (out, seen) = normalize_ranked(&base, sig);
        let mut inner = self.lock();
        inner.derived_builds += 1;
        Arc::clone(
            &inner
                .derived
                .entry(key)
                .or_insert((Arc::new(out), Some(Arc::new(seen))))
                .0,
        )
    }

    /// The cached index over `rel` keyed on `key_cols` (see [`IndexCache`]).
    pub fn index(&self, rel: &Arc<IdRel>, key_cols: &[usize]) -> Arc<HashIndex> {
        self.lock().indexes.get_or_build(rel, key_cols)
    }

    /// Appends `delta` to `rel`, returning the successor `Arc<Relation>`
    /// handle — O(Δ) end-to-end when `rel` is interned: only the delta's
    /// cells are interned ([`IdRel::append_delta`]), every cached index is
    /// carried over by CSR segment merge ([`HashIndex::merge_appended`]),
    /// and the fresh `Arc` identity invalidates exactly this relation's
    /// normalization/stats entries (cache keys are `Arc` addresses).
    ///
    /// Cumulative churn past [`CHURN_REPLAN_PERCENT`] of the relation's
    /// base cardinality bumps the stats epoch, so stale cost-based plans
    /// are re-costed. An empty delta returns `rel` unchanged.
    pub fn insert_rows(&self, rel: &Arc<Relation>, delta: &Relation) -> Arc<Relation> {
        assert_eq!(delta.arity(), rel.arity(), "delta arity mismatch");
        if delta.is_empty() {
            return Arc::clone(rel);
        }
        let mut next = (**rel).clone();
        for row in delta.iter_rows() {
            next.push_row(row);
        }
        let next = Arc::new(next);
        let mut inner = self.lock();
        let inner = &mut *inner;
        inner.ingest.inserts += 1;
        inner.ingest.rows_inserted += delta.len();
        let old_key = Arc::as_ptr(rel) as usize;
        let new_key = Arc::as_ptr(&next) as usize;
        if let Some((_pin, old_mirror)) = inner.interned.remove(&old_key) {
            let base_before = old_mirror.live_len();
            let old_rows = old_mirror.len();
            let old_mirror_ptr = Arc::as_ptr(&old_mirror) as usize;
            let mut mirror = (*old_mirror).clone();
            mirror.append_delta(delta, &mut inner.dict);
            let mirror = Arc::new(mirror);
            inner
                .interned
                .insert(new_key, (Arc::clone(&next), Arc::clone(&mirror)));
            inner.ingest.indexes_merged +=
                inner
                    .indexes
                    .reseed_merged(old_mirror_ptr, &mirror, old_rows);
            // Normalizations built with their dedup set carry over: append
            // the delta segment's normalization to a copy of the old entry
            // ([`normalize_ranked_append`] is prefix-compositional), so the
            // successor's first prepare re-hashes Δ rows, not the relation.
            // Closure-built entries (no set) are rebuilt on demand.
            let carried: Vec<_> = inner
                .derived
                .iter()
                .filter(|((p, _), (_, seen))| *p == old_key && seen.is_some())
                .map(|((_, sig), (drel, seen))| {
                    let seen = seen.as_ref().expect("filtered on Some");
                    (sig.clone(), Arc::clone(drel), Arc::clone(seen))
                })
                .collect();
            inner.derived.retain(|(p, _), _| *p != old_key);
            for (sig, drel, dseen) in carried {
                let mut out = (*drel).clone();
                let mut seen = (*dseen).clone();
                normalize_ranked_append(&mirror, &sig, old_rows, &mut out, &mut seen);
                inner.ingest.derived_carried += 1;
                inner
                    .derived
                    .insert((new_key, sig), (Arc::new(out), Some(Arc::new(seen))));
            }
            inner.rel_stats.remove(&old_mirror_ptr);
            inner.note_churn(
                old_key,
                new_key,
                delta.len(),
                base_before,
                mirror.live_len(),
            );
        } else {
            // Never interned: nothing cached to carry. The first
            // `interned_rel` on the successor pays the (full) build and
            // bumps the epoch as any new base relation does.
            inner.note_churn(old_key, new_key, delta.len(), rel.len(), next.len());
        }
        next
    }

    /// Removes every row of `rel` equal to a row of `victims`, returning
    /// the successor `Arc<Relation>` handle. The value-level successor is
    /// compact; the interned mirror keeps its physical layout and marks
    /// the victims in a tombstone bitmap ([`IdRel::mark_deleted_where`]),
    /// so cached CSR indexes merge over ([`HashIndex::merge_appended`]
    /// drops dead rows from the arena) instead of rebuilding. Victim rows
    /// containing values the session never interned match nothing. An
    /// empty victim set returns `rel` unchanged.
    pub fn delete_rows(&self, rel: &Arc<Relation>, victims: &Relation) -> Arc<Relation> {
        assert_eq!(victims.arity(), rel.arity(), "victim arity mismatch");
        if victims.is_empty() {
            return Arc::clone(rel);
        }
        let victim_set = RowSet::build(victims);
        let mut next = (**rel).clone();
        next.retain_rows(|row| !victim_set.contains(row));
        let removed = rel.len() - next.len();
        let next = Arc::new(next);
        let mut inner = self.lock();
        let inner = &mut *inner;
        inner.ingest.deletes += 1;
        inner.ingest.rows_deleted += removed;
        let old_key = Arc::as_ptr(rel) as usize;
        let new_key = Arc::as_ptr(&next) as usize;
        if let Some((_pin, old_mirror)) = inner.interned.remove(&old_key) {
            let base_before = old_mirror.live_len();
            let old_rows = old_mirror.len();
            let old_mirror_ptr = Arc::as_ptr(&old_mirror) as usize;
            let mut mirror = (*old_mirror).clone();
            // Id-level victim keys through lookup only: values the session
            // has never seen cannot occur in the mirror.
            let mut ids = IdSet::new();
            let mut buf: Vec<ValueId> = Vec::with_capacity(victims.arity());
            'rows: for row in victims.iter_rows() {
                buf.clear();
                for &v in row {
                    match inner.dict.lookup(v) {
                        Some(id) => buf.push(id),
                        None => continue 'rows,
                    }
                }
                ids.insert(&buf);
            }
            let killed = mirror.mark_deleted_where(|row| ids.contains(row));
            debug_assert_eq!(killed, removed, "mirror and value rows agree");
            let mirror = Arc::new(mirror);
            inner
                .interned
                .insert(new_key, (Arc::clone(&next), Arc::clone(&mirror)));
            inner.ingest.indexes_merged +=
                inner
                    .indexes
                    .reseed_merged(old_mirror_ptr, &mirror, old_rows);
            inner.derived.retain(|(p, _), _| *p != old_key);
            inner.rel_stats.remove(&old_mirror_ptr);
            inner.note_churn(old_key, new_key, killed, base_before, mirror.live_len());
        } else {
            inner.note_churn(old_key, new_key, removed, rel.len(), next.len());
        }
        next
    }

    /// Churn diagnostics for `rel`, if its mirror is interned: segment
    /// count, live/dead rows, tombstone fraction.
    pub fn churn_of(&self, rel: &Arc<Relation>) -> Option<RelChurn> {
        let inner = self.lock();
        inner
            .interned
            .get(&(Arc::as_ptr(rel) as usize))
            .map(|(_pin, m)| RelChurn {
                segments: m.n_segments(),
                live_rows: m.live_len(),
                dead_rows: m.n_dead(),
                tombstone_fraction: m.tombstone_fraction(),
            })
    }

    /// Snapshot of the delta-ingestion counters.
    pub fn ingest_stats(&self) -> IngestStats {
        self.lock().ingest
    }

    /// The cached [`RelStats`] of `rel`, computed on first request. Columns
    /// with an already-built single-column index are harvested straight off
    /// its CSR offsets; the rest are counted in one pass per column.
    pub fn rel_stats(&self, rel: &Arc<IdRel>) -> Arc<RelStats> {
        let key = Arc::as_ptr(rel) as usize;
        let mut inner = self.lock();
        if let Some((_pin, s)) = inner.rel_stats.get(&key) {
            return Arc::clone(s);
        }
        let stats = {
            let indexes = &inner.indexes;
            Arc::new(RelStats::compute_with(rel, |c| {
                indexes
                    .peek(key, &[c])
                    .map(|i| RelStats::column_from_index(i))
            }))
        };
        inner
            .rel_stats
            .insert(key, (Arc::clone(rel), Arc::clone(&stats)));
        stats
    }

    /// The current stats epoch: bumped whenever a *new* base relation is
    /// interned, so `(fingerprint, epoch)` plan-cache keys go stale the
    /// moment the underlying instance data changes. Registrations of
    /// derived mirrors do not bump it.
    pub fn stats_epoch(&self) -> u64 {
        self.lock().epoch
    }

    /// The cached plan stored under `(fingerprint, epoch)`, if any. The
    /// planner downcasts the returned `Arc<dyn Any>` to its own plan type.
    pub fn cached_plan(&self, fingerprint: u64, epoch: u64) -> Option<Arc<dyn Any + Send + Sync>> {
        self.lock()
            .plans
            .get(&(fingerprint, epoch))
            .map(|s| Arc::clone(&s.0))
    }

    /// Stores a type-erased plan under `(fingerprint, epoch)`.
    pub fn store_plan(&self, fingerprint: u64, epoch: u64, plan: Arc<dyn Any + Send + Sync>) {
        self.lock()
            .plans
            .insert((fingerprint, epoch), PlanSlot(plan));
    }

    /// Number of distinct values interned so far.
    pub fn dict_len(&self) -> usize {
        self.lock().dict.len()
    }

    /// Snapshot of the cache counters.
    pub fn stats(&self) -> ContextStats {
        let inner = self.lock();
        ContextStats {
            interned_hits: inner.interned_hits,
            interned_builds: inner.interned_builds,
            derived_hits: inner.derived_hits,
            derived_builds: inner.derived_builds,
            index_hits: inner.indexes.hits,
            index_builds: inner.indexes.builds,
        }
    }
}

impl Default for EvalContext {
    fn default() -> EvalContext {
        EvalContext::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shared_pairs(pairs: &[(i64, i64)]) -> Arc<Relation> {
        Arc::new(Relation::from_pairs(pairs.iter().copied()))
    }

    #[test]
    fn interned_rel_is_cached() {
        let ctx = EvalContext::new();
        let rel = shared_pairs(&[(1, 2), (3, 4)]);
        let a = ctx.interned_rel(&rel);
        let b = ctx.interned_rel(&rel);
        assert!(Arc::ptr_eq(&a, &b), "same physical IdRel");
        assert_eq!(ctx.stats().interned_builds, 1);
        assert_eq!(ctx.stats().interned_hits, 1);
    }

    #[test]
    fn index_cache_returns_same_object() {
        let ctx = EvalContext::new();
        let rel = shared_pairs(&[(1, 2), (1, 3), (2, 4)]);
        let id_rel = ctx.interned_rel(&rel);
        let a = ctx.index(&id_rel, &[0]);
        let b = ctx.index(&id_rel, &[0]);
        assert!(Arc::ptr_eq(&a, &b), "repeated requests share one index");
        let c = ctx.index(&id_rel, &[1]);
        assert!(!Arc::ptr_eq(&a, &c), "different key_cols, different index");
        let s = ctx.stats();
        assert_eq!(s.index_builds, 2);
        assert_eq!(s.index_hits, 1);
    }

    #[test]
    fn derived_rel_cached_by_signature() {
        let ctx = EvalContext::new();
        let rel = shared_pairs(&[(1, 1), (1, 2)]);
        let build_calls = std::cell::Cell::new(0);
        for _ in 0..3 {
            ctx.derived_rel(&rel, &[0, 0], |base| {
                build_calls.set(build_calls.get() + 1);
                base.project_dedup(&[0])
            });
        }
        assert_eq!(build_calls.get(), 1);
        let other = ctx.derived_rel(&rel, &[0, 1], |base| base.clone());
        assert_eq!(other.arity(), 2);
        assert_eq!(ctx.stats().derived_builds, 2);
    }

    #[test]
    fn distinct_relations_do_not_collide() {
        let ctx = EvalContext::new();
        let a = shared_pairs(&[(1, 2)]);
        let b = shared_pairs(&[(3, 4), (5, 6)]);
        assert_eq!(ctx.interned_rel(&a).len(), 1);
        assert_eq!(ctx.interned_rel(&b).len(), 2);
    }

    #[test]
    fn lookup_row_rejects_unknown_values() {
        let ctx = EvalContext::new();
        let rel = shared_pairs(&[(1, 2)]);
        ctx.interned_rel(&rel);
        let mut buf = Vec::new();
        assert!(ctx.lookup_row(&[Value::Int(1), Value::Int(2)], &mut buf));
        assert_eq!(buf.len(), 2);
        assert!(!ctx.lookup_row(&[Value::Int(99)], &mut buf));
    }

    #[test]
    fn rel_stats_cached_and_harvested() {
        let ctx = EvalContext::new();
        let rel = shared_pairs(&[(1, 10), (1, 20), (2, 10)]);
        let id_rel = ctx.interned_rel(&rel);
        // Build a single-column index first so the harvest path is hit.
        ctx.index(&id_rel, &[0]);
        let a = ctx.rel_stats(&id_rel);
        let b = ctx.rel_stats(&id_rel);
        assert!(Arc::ptr_eq(&a, &b), "stats cached by relation identity");
        assert_eq!(a.rows, 3);
        assert_eq!(a.distinct, vec![2, 2]);
        assert_eq!(a.max_fanout, vec![2, 2]);
    }

    #[test]
    fn epoch_bumps_on_intern_but_not_register() {
        let ctx = EvalContext::new();
        let e0 = ctx.stats_epoch();
        let rel = shared_pairs(&[(1, 2)]);
        ctx.interned_rel(&rel);
        let e1 = ctx.stats_epoch();
        assert!(e1 > e0, "interning a new relation bumps the epoch");
        ctx.interned_rel(&rel);
        assert_eq!(ctx.stats_epoch(), e1, "cache hits leave the epoch alone");
        let other = shared_pairs(&[(3, 4)]);
        let mirror = ctx.interned_rel(&other);
        let e2 = ctx.stats_epoch();
        ctx.register_interned(&other, mirror);
        assert_eq!(
            ctx.stats_epoch(),
            e2,
            "registering a derived mirror must not invalidate cached plans"
        );
    }

    #[test]
    fn insert_rows_preseeds_mirror_and_merges_indexes() {
        let ctx = EvalContext::new();
        let rel = shared_pairs(&[(1, 10), (2, 20)]);
        let id_rel = ctx.interned_rel(&rel);
        ctx.index(&id_rel, &[0]);
        let before = ctx.stats();
        let next = ctx.insert_rows(&rel, &Relation::from_pairs([(3, 30)]));
        let next_ids = ctx.interned_rel(&next);
        assert_eq!(
            ctx.stats().interned_builds,
            before.interned_builds,
            "the successor mirror is pre-seeded, not re-interned"
        );
        assert_eq!(next_ids.len(), 3);
        assert_eq!(next_ids.n_segments(), 2);
        let idx = ctx.index(&next_ids, &[0]);
        assert_eq!(
            ctx.stats().index_builds,
            before.index_builds,
            "the index is carried by CSR merge, not rebuilt"
        );
        let three = ctx.lookup(Value::Int(3)).unwrap();
        assert_eq!(idx.get(&[three]), &[2]);
        let ing = ctx.ingest_stats();
        assert_eq!(ing.inserts, 1);
        assert_eq!(ing.rows_inserted, 1);
        assert_eq!(ing.indexes_merged, 1);
    }

    #[test]
    fn insert_rows_carries_normalizations_by_delta_append() {
        let ctx = EvalContext::new();
        let rel = shared_pairs(&[(1, 10), (2, 20), (2, 2)]);
        // One identity normalization and one repeated-variable shape
        // (`R(x, x)`: keep rows whose columns agree, project to one).
        let ident = ctx.normalized_rel(&rel, &[0, 1]);
        let diag = ctx.normalized_rel(&rel, &[0, 0]);
        assert_eq!(ident.len(), 3);
        assert_eq!(diag.len(), 1, "only (2, 2) survives R(x, x)");
        let builds = ctx.stats().derived_builds;
        // Delta: one fresh row, one duplicate of a live row, one new
        // diagonal row.
        let next = ctx.insert_rows(&rel, &Relation::from_pairs([(3, 30), (1, 10), (7, 7)]));
        assert_eq!(ctx.ingest_stats().derived_carried, 2);
        let ident2 = ctx.normalized_rel(&next, &[0, 1]);
        let diag2 = ctx.normalized_rel(&next, &[0, 0]);
        assert_eq!(
            ctx.stats().derived_builds,
            builds,
            "carried entries hit the cache, nothing is re-normalized"
        );
        assert_eq!(ident2.len(), 5, "the duplicate delta row deduplicates");
        assert_eq!(diag2.len(), 2, "(7, 7) joins the diagonal");
        // The carried entries decode to exactly a from-scratch rebuild.
        let (scratch, _) = crate::idrel::normalize_ranked(&ctx.interned_rel(&next), &[0, 1]);
        assert_eq!(*ident2, scratch);
        let (scratch, _) = crate::idrel::normalize_ranked(&ctx.interned_rel(&next), &[0, 0]);
        assert_eq!(*diag2, scratch);
    }

    #[test]
    fn delete_rows_drops_normalizations_for_rebuild() {
        let ctx = EvalContext::new();
        let rel = shared_pairs(&[(1, 10), (2, 20)]);
        ctx.normalized_rel(&rel, &[0, 1]);
        let builds = ctx.stats().derived_builds;
        let next = ctx.delete_rows(&rel, &Relation::from_pairs([(1, 10)]));
        assert_eq!(
            ctx.ingest_stats().derived_carried,
            0,
            "deletes cannot carry: derived rows do not map back to base rows"
        );
        let after = ctx.normalized_rel(&next, &[0, 1]);
        assert_eq!(ctx.stats().derived_builds, builds + 1, "rebuilt on demand");
        assert_eq!(after.len(), 1);
    }

    #[test]
    fn delete_rows_tombstones_and_emptied_keys_vanish() {
        let ctx = EvalContext::new();
        let rel = shared_pairs(&[(1, 10), (2, 20), (2, 21)]);
        let id_rel = ctx.interned_rel(&rel);
        ctx.index(&id_rel, &[0]);
        let next = ctx.delete_rows(&rel, &Relation::from_pairs([(1, 10)]));
        assert_eq!(next.len(), 2, "value level compacts");
        let m = ctx.interned_rel(&next);
        assert_eq!(m.live_len(), 2);
        assert_eq!(m.len(), 3, "mirror keeps physical slots");
        let idx = ctx.index(&m, &[0]);
        let one = ctx.lookup(Value::Int(1)).unwrap();
        assert!(!idx.contains_key(&[one]), "emptied group reads as absent");
        let churn = ctx.churn_of(&next).unwrap();
        assert_eq!(churn.dead_rows, 1);
        assert_eq!(churn.live_rows, 2);
        assert!(churn.tombstone_fraction > 0.0);
        assert_eq!(ctx.ingest_stats().rows_deleted, 1);
    }

    #[test]
    fn delete_of_unknown_values_matches_nothing() {
        let ctx = EvalContext::new();
        let rel = shared_pairs(&[(1, 10)]);
        ctx.interned_rel(&rel);
        let next = ctx.delete_rows(&rel, &Relation::from_pairs([(99, 99)]));
        assert_eq!(next.len(), 1);
        assert_eq!(ctx.interned_rel(&next).live_len(), 1);
        assert_eq!(ctx.ingest_stats().rows_deleted, 0);
    }

    #[test]
    fn empty_delta_is_a_no_op_handle() {
        let ctx = EvalContext::new();
        let rel = shared_pairs(&[(1, 10)]);
        let same = ctx.insert_rows(&rel, &Relation::new(2));
        assert!(Arc::ptr_eq(&rel, &same), "empty delta keeps the handle");
        assert_eq!(ctx.ingest_stats().inserts, 0);
    }

    #[test]
    fn churn_threshold_bumps_epoch_cumulatively() {
        let ctx = EvalContext::new();
        let rel = shared_pairs(&[
            (0, 0),
            (1, 1),
            (2, 2),
            (3, 3),
            (4, 4),
            (5, 5),
            (6, 6),
            (7, 7),
        ]);
        ctx.interned_rel(&rel);
        let e0 = ctx.stats_epoch();
        // 1 of 8 rows = 12.5% — below the 25% re-plan threshold.
        let r1 = ctx.insert_rows(&rel, &Relation::from_pairs([(100, 100)]));
        assert_eq!(ctx.stats_epoch(), e0, "small deltas keep plans hot");
        // A second row crosses 25% cumulative churn on the lineage.
        let r2 = ctx.insert_rows(&r1, &Relation::from_pairs([(101, 101)]));
        assert_eq!(ctx.stats_epoch(), e0 + 1, "cumulative churn re-plans");
        assert_eq!(ctx.ingest_stats().epoch_bumps, 1);
        // The ledger re-based on the new cardinality: one more small delta
        // stays below threshold again.
        ctx.insert_rows(&r2, &Relation::from_pairs([(102, 102)]));
        assert_eq!(ctx.stats_epoch(), e0 + 1);
    }

    #[test]
    fn plan_cache_roundtrip() {
        let ctx = EvalContext::new();
        assert!(ctx.cached_plan(7, 0).is_none());
        let plan: Arc<dyn std::any::Any + Send + Sync> = Arc::new(42usize);
        ctx.store_plan(7, 0, plan);
        let got = ctx.cached_plan(7, 0).expect("stored plan");
        assert_eq!(*got.downcast::<usize>().unwrap(), 42);
        assert!(ctx.cached_plan(7, 1).is_none(), "epoch is part of the key");
        assert!(ctx.cached_plan(8, 0).is_none(), "fingerprint is too");
    }

    #[test]
    fn decode_tuple_roundtrips() {
        let ctx = EvalContext::new();
        let ids = [ctx.intern(Value::Int(5)), ctx.intern(Value::Bottom)];
        let t = ctx.decode_tuple(ids.iter().copied());
        assert_eq!(t, Tuple(vec![Value::Int(5), Value::Bottom].into()));
    }

    #[test]
    fn intern_key_matches_lookup() {
        let ctx = EvalContext::new();
        let k1 = ctx.intern_key(&[Value::Int(1), Value::Int(2)]);
        let k2 = ctx.intern_key(&[Value::Int(1), Value::Int(2)]);
        assert_eq!(k1, k2);
        let k3 = ctx.intern_key(&[Value::Int(2), Value::Int(1)]);
        assert_ne!(k1, k3);
        // Long keys spill but still compare correctly.
        let long: Vec<Value> = (0..6).map(Value::Int).collect();
        assert_eq!(ctx.intern_key(&long), ctx.intern_key(&long));
    }
}
