//! Columnar interned relations.
//!
//! [`IdRel`] is the execution-side mirror of [`Relation`]: one dense
//! `Vec<ValueId>` per column. All join-time work (normalization, semijoins,
//! index builds, enumeration cursors) runs on this layout — 4-byte ids,
//! column slices directly addressable via [`IdRel::col`] — while the
//! row-major [`Relation`] stays the ingestion/API format.

use crate::dictionary::{Dictionary, ValueId};
use crate::hash::{fast_set_with_capacity, seeded_map_with_capacity, FastSet, SeededFastMap};
use crate::index::HashIndex;
use crate::key::InlineKey;
use crate::par;
use crate::relation::Relation;
use crate::value::Value;

/// A relation of interned values in columnar layout.
///
/// Row `r` is `(col(0)[r], col(1)[r], …)`. Arity-0 relations hold zero or
/// one (empty) rows, tracked by `n_rows` alone.
///
/// Base-relation mirrors grow by *segments*: [`IdRel::append_delta`]
/// interns only the delta's cells (the dictionary is append-only, so
/// surviving rows keep their ids), and [`IdRel::mark_deleted_where`]
/// tombstones rows in place instead of compacting — physical row ids stay
/// stable, so cached CSR indexes can be merged rather than rebuilt.
/// Derived relations (normalizations, projections, semijoin results) are
/// always compact: every producing operation here skips dead rows.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IdRel {
    n_rows: usize,
    cols: Vec<Vec<ValueId>>,
    /// Tombstone bitmap over physical rows (bit set = deleted). May be
    /// shorter than `n_rows / 64` — rows past its end are live (deltas
    /// appended after a delete don't grow it until the next delete).
    tombs: Vec<u64>,
    /// Number of set bits in `tombs`.
    n_dead: usize,
    /// Delta segments appended since construction (diagnostics; the base
    /// build is segment zero).
    delta_segments: u32,
}

impl IdRel {
    /// An empty relation of the given arity.
    pub fn new(arity: usize) -> IdRel {
        IdRel {
            n_rows: 0,
            cols: vec![Vec::new(); arity],
            tombs: Vec::new(),
            n_dead: 0,
            delta_segments: 0,
        }
    }

    /// An empty relation with row capacity.
    pub fn with_capacity(arity: usize, rows: usize) -> IdRel {
        IdRel {
            n_rows: 0,
            // Not `vec![Vec::with_capacity(rows); arity]`: cloning an empty
            // Vec drops its capacity, which would leave every column but
            // one unallocated.
            cols: (0..arity).map(|_| Vec::with_capacity(rows)).collect(),
            tombs: Vec::new(),
            n_dead: 0,
            delta_segments: 0,
        }
    }

    /// Interns every value of `rel` into `dict` and lays the result out
    /// column-wise. Row order is preserved. Relations above the parallel
    /// row threshold intern through [`IdRel::from_relation_parallel`] when
    /// worker threads are available.
    pub fn from_relation(rel: &Relation, dict: &mut Dictionary) -> IdRel {
        let workers = par::workers_for(rel.len());
        if workers > 1 && rel.arity() > 0 {
            return IdRel::from_relation_parallel(rel, dict, workers);
        }
        let mut out = IdRel::with_capacity(rel.arity(), rel.len());
        for row in rel.iter_rows() {
            for (c, &v) in row.iter().enumerate() {
                out.cols[c].push(dict.intern(v));
            }
            out.n_rows += 1;
        }
        out
    }

    /// Parallel interning over `std::thread::scope` workers.
    ///
    /// Each worker interns a contiguous row range against a *local*
    /// dictionary (value → local code, first-seen order), so the expensive
    /// per-cell hashing runs fully in parallel. The sequential merge then
    /// interns only each worker's distinct values into `dict` (bounded by
    /// the number of distinct values, not cells), and a final parallel pass
    /// translates the local codes into global ids, writing disjoint row
    /// ranges of the output columns. Row order is preserved, and ids for
    /// values already known to `dict` are identical to the sequential path;
    /// ids of *new* values may be assigned in a different (still
    /// deterministic for a fixed worker count) order.
    pub fn from_relation_parallel(rel: &Relation, dict: &mut Dictionary, workers: usize) -> IdRel {
        let n = rel.len();
        let arity = rel.arity();
        let ranges = par::row_ranges(n, workers);

        // Phase 1 (parallel): local dictionaries + locally-coded columns.
        struct Local {
            order: Vec<Value>,
            codes: Vec<u32>, // row-major, arity ids per row
        }
        let locals: Vec<Local> = std::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .iter()
                .map(|range| {
                    let range = range.clone();
                    scope.spawn(move || {
                        // Seeded: these maps hash raw (untrusted) values.
                        let mut map: SeededFastMap<Value, u32> =
                            seeded_map_with_capacity(range.len().min(1 << 12));
                        let mut order: Vec<Value> = Vec::new();
                        let mut codes: Vec<u32> = Vec::with_capacity(range.len() * arity);
                        for r in range {
                            for &v in rel.row(r) {
                                let code = *map.entry(v).or_insert_with(|| {
                                    order.push(v);
                                    (order.len() - 1) as u32
                                });
                                codes.push(code);
                            }
                        }
                        Local { order, codes }
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        // Phase 2 (sequential): intern each worker's distinct values once.
        let remaps: Vec<Vec<ValueId>> = locals
            .iter()
            .map(|l| l.order.iter().map(|&v| dict.intern(v)).collect())
            .collect();

        // Phase 3 (parallel): translate codes into the final columns,
        // each worker writing its disjoint row range of every column.
        let mut cols: Vec<Vec<ValueId>> = (0..arity).map(|_| vec![ValueId::BOTTOM; n]).collect();
        {
            let mut rest: Vec<&mut [ValueId]> = cols.iter_mut().map(|c| c.as_mut_slice()).collect();
            let mut chunks: Vec<Vec<&mut [ValueId]>> = Vec::with_capacity(ranges.len());
            for range in &ranges {
                let mut mine = Vec::with_capacity(arity);
                for slot in rest.iter_mut() {
                    let (head, tail) = std::mem::take(slot).split_at_mut(range.len());
                    *slot = tail;
                    mine.push(head);
                }
                chunks.push(mine);
            }
            std::thread::scope(|scope| {
                for ((local, remap), mut mine) in locals.iter().zip(&remaps).zip(chunks) {
                    scope.spawn(move || {
                        for (r, row) in local.codes.chunks_exact(arity).enumerate() {
                            for (c, &code) in row.iter().enumerate() {
                                mine[c][r] = remap[code as usize];
                            }
                        }
                    });
                }
            });
        }
        IdRel {
            n_rows: n,
            cols,
            tombs: Vec::new(),
            n_dead: 0,
            delta_segments: 0,
        }
    }

    /// The arity (number of columns).
    #[inline]
    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    /// Number of physical rows, dead rows included — the bound for raw
    /// row-id access ([`IdRel::at`], [`IdRel::col`]). Use
    /// [`IdRel::live_len`] for cardinality.
    #[inline]
    pub fn len(&self) -> usize {
        self.n_rows
    }

    /// Whether there are no physical rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// Number of live (non-tombstoned) rows — the logical cardinality.
    #[inline]
    pub fn live_len(&self) -> usize {
        self.n_rows - self.n_dead
    }

    /// Number of tombstoned rows.
    #[inline]
    pub fn n_dead(&self) -> usize {
        self.n_dead
    }

    /// Whether any row is tombstoned.
    #[inline]
    pub fn has_tombstones(&self) -> bool {
        self.n_dead != 0
    }

    /// Whether physical row `r` is live. Rows past the bitmap's end are
    /// live by construction.
    #[inline]
    pub fn is_live(&self, r: usize) -> bool {
        self.n_dead == 0
            || self
                .tombs
                .get(r >> 6)
                .is_none_or(|w| w & (1u64 << (r & 63)) == 0)
    }

    /// Segments: the base build plus one per appended delta.
    #[inline]
    pub fn n_segments(&self) -> usize {
        self.delta_segments as usize + 1
    }

    /// Fraction of physical rows that are tombstoned (`0.0` when empty) —
    /// the churn-bloat signal `ucq explain` surfaces.
    pub fn tombstone_fraction(&self) -> f64 {
        if self.n_rows == 0 {
            0.0
        } else {
            self.n_dead as f64 / self.n_rows as f64
        }
    }

    /// Appends `delta` as a new segment, interning only its cells — O(Δ),
    /// not O(n): surviving rows already hold stable ids in the append-only
    /// `dict`. Returns the number of physical rows added. An arity-0 delta
    /// revives the single empty tuple.
    pub fn append_delta(&mut self, delta: &Relation, dict: &mut Dictionary) -> usize {
        assert_eq!(delta.arity(), self.arity(), "delta arity mismatch");
        if delta.is_empty() {
            return 0;
        }
        self.delta_segments += 1;
        if self.arity() == 0 {
            let added = usize::from(self.live_len() == 0);
            self.n_rows = 1;
            self.tombs.clear();
            self.n_dead = 0;
            return added;
        }
        for row in delta.iter_rows() {
            for (c, &v) in row.iter().enumerate() {
                self.cols[c].push(dict.intern(v));
            }
        }
        self.n_rows += delta.len();
        delta.len()
    }

    /// Tombstones every live row whose ids satisfy `pred` — rows stay
    /// physically in place (cached CSR row ids remain valid), they just
    /// stop being visible to live-row consumers. Returns the number of
    /// rows newly tombstoned.
    pub fn mark_deleted_where<F>(&mut self, mut pred: F) -> usize
    where
        F: FnMut(&[ValueId]) -> bool,
    {
        let mut buf: Vec<ValueId> = Vec::with_capacity(self.arity());
        let mut killed = 0usize;
        for r in 0..self.n_rows {
            if !self.is_live(r) {
                continue;
            }
            buf.clear();
            buf.extend(self.cols.iter().map(|col| col[r]));
            if pred(&buf) {
                let want = (r >> 6) + 1;
                if self.tombs.len() < want {
                    self.tombs.resize(want, 0);
                }
                self.tombs[r >> 6] |= 1u64 << (r & 63);
                self.n_dead += 1;
                killed += 1;
            }
        }
        killed
    }

    /// Column `c` as a dense id slice — the columnar access path.
    #[inline]
    pub fn col(&self, c: usize) -> &[ValueId] {
        &self.cols[c]
    }

    /// The id at `(row, col)`.
    #[inline]
    pub fn at(&self, row: usize, col: usize) -> ValueId {
        self.cols[col][row]
    }

    /// Appends a row. Panics on arity mismatch. Arity-0 relations saturate
    /// at one row (the single empty tuple).
    #[inline]
    pub fn push_row(&mut self, row: &[ValueId]) {
        assert_eq!(row.len(), self.arity(), "row arity mismatch");
        if self.arity() == 0 {
            self.n_rows = 1;
            return;
        }
        for (c, &id) in row.iter().enumerate() {
            self.cols[c].push(id);
        }
        self.n_rows += 1;
    }

    /// Copies row `r`'s ids into `out` (cleared first). Reusing one buffer
    /// across calls keeps row gathering allocation-free.
    #[inline]
    pub fn gather_row(&self, r: usize, out: &mut Vec<ValueId>) {
        out.clear();
        for col in &self.cols {
            out.push(col[r]);
        }
    }

    /// Projects onto `cols` (by position), deduplicating rows (packed-key
    /// dedup for projections up to 4 columns — see [`IdSet`]). Tombstoned
    /// rows are skipped; the projection is always compact.
    pub fn project_dedup(&self, cols: &[usize]) -> IdRel {
        let mut seen = IdSet::with_capacity(self.live_len());
        let mut out = IdRel::new(cols.len());
        let col_slices: Vec<&[ValueId]> = cols.iter().map(|&c| self.cols[c].as_slice()).collect();
        let mut buf: Vec<ValueId> = Vec::with_capacity(cols.len());
        for r in 0..self.n_rows {
            if !self.is_live(r) {
                continue;
            }
            buf.clear();
            buf.extend(col_slices.iter().map(|c| c[r]));
            if seen.insert(&buf) {
                out.push_row(&buf);
            }
        }
        out
    }

    /// Keeps only live rows whose ids (projected onto `key_cols`) pass
    /// `pred`. The predicate sees the projected key in a reused buffer.
    /// Compacts: tombstoned rows are dropped along the way.
    pub fn retain_rows_by_key<F>(&mut self, key_cols: &[usize], mut pred: F)
    where
        F: FnMut(&[ValueId]) -> bool,
    {
        if self.arity() == 0 {
            self.n_rows = usize::from(self.live_len() == 1 && pred(&[]));
            self.tombs.clear();
            self.n_dead = 0;
            return;
        }
        let mut buf: Vec<ValueId> = Vec::with_capacity(key_cols.len());
        let mut write = 0usize;
        for read in 0..self.n_rows {
            if !self.is_live(read) {
                continue;
            }
            buf.clear();
            buf.extend(key_cols.iter().map(|&c| self.cols[c][read]));
            if pred(&buf) {
                if write != read {
                    for col in self.cols.iter_mut() {
                        col[write] = col[read];
                    }
                }
                write += 1;
            }
        }
        for col in self.cols.iter_mut() {
            col.truncate(write);
        }
        self.n_rows = write;
        self.tombs.clear();
        self.n_dead = 0;
    }

    /// Keeps only rows whose key-column projection has a match in `idx`
    /// (the batched semijoin retain). Keys are gathered per block through
    /// hoisted column accessors and probed in bulk via
    /// [`HashIndex::probe_batch`]; `scratch` carries the key-run and
    /// keep-mask buffers so repeated passes (the full reducer's sweeps)
    /// reuse one set of allocations.
    pub fn retain_rows_by_index(
        &mut self,
        key_cols: &[usize],
        idx: &HashIndex,
        scratch: &mut ProbeScratch,
    ) {
        assert!(
            !key_cols.is_empty(),
            "empty separators are a nonemptiness check, not a probe"
        );
        let n = self.n_rows;
        let k = key_cols.len();
        const BLOCK: usize = 1024;
        scratch.keep.clear();
        scratch.keep.resize(n, false);
        {
            // Hoisted column accessors: one slice per key column for the
            // whole pass instead of a `cols[c][r]` double deref per cell.
            let cols: Vec<&[ValueId]> = key_cols.iter().map(|&c| self.cols[c].as_slice()).collect();
            for start in (0..n).step_by(BLOCK) {
                let end = (start + BLOCK).min(n);
                scratch.keys.clear();
                for r in start..end {
                    scratch.keys.extend(cols.iter().map(|c| c[r]));
                }
                for (i, rows) in idx.probe_batch(&scratch.keys, k) {
                    scratch.keep[start + i] = !rows.is_empty();
                }
            }
        }
        let mut write = 0usize;
        for read in 0..n {
            if scratch.keep[read] && self.is_live(read) {
                if write != read {
                    for col in self.cols.iter_mut() {
                        col[write] = col[read];
                    }
                }
                write += 1;
            }
        }
        for col in self.cols.iter_mut() {
            col.truncate(write);
        }
        self.n_rows = write;
        self.tombs.clear();
        self.n_dead = 0;
    }

    /// Keeps only rows whose key-column projection is a member of `set` —
    /// the semijoin retain against a key *set*. Where
    /// [`IdRel::retain_rows_by_index`] probes a CSR [`HashIndex`] (which
    /// also carries the matching row ids), this needs only existence, so
    /// the right side costs one set build (no counting/scatter passes) and
    /// each probe one packed-key hash.
    pub fn retain_rows_by_set(
        &mut self,
        key_cols: &[usize],
        set: &IdSet,
        scratch: &mut ProbeScratch,
    ) {
        assert!(
            !key_cols.is_empty(),
            "empty separators are a nonemptiness check, not a probe"
        );
        // The set-probe twin of the `probe_batch` hook: reducer semijoins
        // on the small-relation path are still probe sites to the chaos
        // seam (inert without `--cfg ucq_fault_inject`).
        crate::faults::on_probe();
        let n = self.n_rows;
        scratch.keep.clear();
        {
            let cols: Vec<&[ValueId]> = key_cols.iter().map(|&c| self.cols[c].as_slice()).collect();
            let mut buf: Vec<ValueId> = Vec::with_capacity(key_cols.len());
            for r in 0..n {
                buf.clear();
                buf.extend(cols.iter().map(|c| c[r]));
                scratch.keep.push(set.contains(&buf));
            }
        }
        let mut write = 0usize;
        for read in 0..n {
            if scratch.keep[read] && self.is_live(read) {
                if write != read {
                    for col in self.cols.iter_mut() {
                        col[write] = col[read];
                    }
                }
                write += 1;
            }
        }
        for col in self.cols.iter_mut() {
            col.truncate(write);
        }
        self.n_rows = write;
        self.tombs.clear();
        self.n_dead = 0;
    }

    /// Deduplicates rows, preserving first-occurrence order. Compacts
    /// tombstoned rows away as a side effect.
    pub fn dedup_rows(&mut self) {
        if self.arity() == 0 || self.n_rows <= 1 {
            if self.n_dead > 0 {
                self.n_rows = self.live_len();
                self.tombs.clear();
                self.n_dead = 0;
                for col in self.cols.iter_mut() {
                    col.truncate(self.n_rows);
                }
            }
            return;
        }
        let mut seen: FastSet<InlineKey> = fast_set_with_capacity(self.n_rows);
        let all: Vec<usize> = (0..self.arity()).collect();
        self.retain_rows_by_key(&all, |row| seen.insert(InlineKey::from_slice(row)));
    }

    /// Decodes back to a row-major [`Relation`] (answer-boundary only).
    /// Tombstoned rows are not decoded.
    pub fn decode(&self, dict: &Dictionary) -> Relation {
        let mut out = Relation::with_capacity(self.arity(), self.live_len());
        let mut buf = Vec::with_capacity(self.arity());
        for r in 0..self.n_rows {
            if !self.is_live(r) {
                continue;
            }
            buf.clear();
            buf.extend(self.cols.iter().map(|col| dict.value(col[r])));
            out.push_row(&buf);
        }
        out
    }
}

/// Reusable buffers for [`IdRel::retain_rows_by_index`]: the gathered key
/// run of the current block and the per-row keep mask. One scratch serves
/// every semijoin pass of a reduction.
#[derive(Clone, Debug, Default)]
pub struct ProbeScratch {
    keys: Vec<ValueId>,
    keep: Vec<bool>,
}

/// Packs a short id row into a `u128` (32 bits per position; valid for
/// `row.len() <= 4`). Only comparable between rows of one fixed width —
/// exactly what a per-projection set guarantees.
#[inline]
fn pack_ids(row: &[ValueId]) -> u128 {
    debug_assert!(row.len() <= 4, "packed keys hold at most 4 ids");
    row.iter()
        .fold(0u128, |acc, &id| (acc << 32) | id.0 as u128)
}

/// Packs an id row of up to 2 ids into a `u64` (the common separator and
/// answer width — one hasher word instead of two).
#[inline]
fn pack_ids64(row: &[ValueId]) -> u64 {
    debug_assert!(row.len() <= 2, "u64 packing holds at most 2 ids");
    row.iter().fold(0u64, |acc, &id| (acc << 32) | id.0 as u64)
}

/// The representation behind [`IdSet`]: keys of up to 2 ids pack into one
/// `u64` (one hasher word, 8-byte equality), up to 4 into one `u128`,
/// wider keys spill to [`InlineKey`]s. The width is fixed at the first
/// insert, so packing is collision-free.
#[derive(Clone, Debug)]
enum IdSetRepr {
    /// No key inserted yet; `cap` is the deferred capacity hint.
    Empty {
        cap: usize,
    },
    Packed64 {
        width: usize,
        set: FastSet<u64>,
    },
    Packed {
        width: usize,
        set: FastSet<u128>,
    },
    Keys(FastSet<InlineKey>),
}

/// A hash set of projected id rows: the id-side analogue of
/// [`RowSet`](crate::RowSet), probed with borrowed `&[ValueId]` keys
/// (allocation-free for any width; no hashing of spilled boxes for keys up
/// to 4 ids — see [`IdSetRepr`]).
#[derive(Clone, Debug)]
pub struct IdSet {
    repr: IdSetRepr,
    len: usize,
}

impl Default for IdSet {
    fn default() -> IdSet {
        IdSet::new()
    }
}

impl IdSet {
    /// An empty set.
    pub fn new() -> IdSet {
        IdSet::with_capacity(0)
    }

    /// An empty set preallocated for `cap` keys.
    pub fn with_capacity(cap: usize) -> IdSet {
        IdSet {
            repr: IdSetRepr::Empty { cap },
            len: 0,
        }
    }

    /// The projections of all live rows of `rel` onto `cols`.
    pub fn build_projected(rel: &IdRel, cols: &[usize]) -> IdSet {
        let mut out = IdSet::with_capacity(rel.live_len());
        // Hoisted column accessors for the whole build pass.
        let col_slices: Vec<&[ValueId]> = cols.iter().map(|&c| rel.col(c)).collect();
        let mut buf: Vec<ValueId> = Vec::with_capacity(cols.len());
        for r in 0..rel.len() {
            if !rel.is_live(r) {
                continue;
            }
            buf.clear();
            buf.extend(col_slices.iter().map(|c| c[r]));
            out.insert(&buf);
        }
        out
    }

    /// All full rows of `rel`.
    pub fn build(rel: &IdRel) -> IdSet {
        let all: Vec<usize> = (0..rel.arity()).collect();
        IdSet::build_projected(rel, &all)
    }

    /// Membership test with a borrowed key — no allocation.
    #[inline]
    pub fn contains(&self, key: &[ValueId]) -> bool {
        match &self.repr {
            IdSetRepr::Empty { .. } => false,
            IdSetRepr::Packed64 { width, set } => {
                debug_assert_eq!(key.len(), *width, "set keys have one fixed width");
                set.contains(&pack_ids64(key))
            }
            IdSetRepr::Packed { width, set } => {
                debug_assert_eq!(key.len(), *width, "set keys have one fixed width");
                set.contains(&pack_ids(key))
            }
            IdSetRepr::Keys(set) => set.contains(key),
        }
    }

    /// Inserts a key; returns whether it was new. All keys of one set must
    /// share one width (the projection width).
    #[inline]
    pub fn insert(&mut self, key: &[ValueId]) -> bool {
        if let IdSetRepr::Empty { cap } = self.repr {
            self.repr = if key.len() <= 2 {
                IdSetRepr::Packed64 {
                    width: key.len(),
                    set: fast_set_with_capacity(cap),
                }
            } else if key.len() <= 4 {
                IdSetRepr::Packed {
                    width: key.len(),
                    set: fast_set_with_capacity(cap),
                }
            } else {
                IdSetRepr::Keys(fast_set_with_capacity(cap))
            };
        }
        let fresh = match &mut self.repr {
            IdSetRepr::Empty { .. } => unreachable!("initialized above"),
            IdSetRepr::Packed64 { width, set } => {
                debug_assert_eq!(key.len(), *width, "set keys have one fixed width");
                set.insert(pack_ids64(key))
            }
            IdSetRepr::Packed { width, set } => {
                debug_assert_eq!(key.len(), *width, "set keys have one fixed width");
                set.insert(pack_ids(key))
            }
            IdSetRepr::Keys(set) => set.insert(InlineKey::from_slice(key)),
        };
        self.len += usize::from(fresh);
        fresh
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Appends the atom-normalization of `base`'s live rows `start..` onto
/// `(out, seen)`: keeps rows whose repeated positions (equal ranks in
/// `sig`) agree, projects to one column per distinct rank in rank order,
/// and deduplicates against `seen`.
///
/// Normalization is prefix-compositional: if `(out, seen)` hold the
/// normalization of physical rows `0..start`, the result holds the
/// normalization of rows `0..base.len()`.
/// [`EvalContext::insert_rows`](crate::EvalContext::insert_rows) leans on
/// exactly that to carry cached normalizations over a delta append —
/// re-normalizing only the delta segment — while a from-scratch build is
/// `start == 0` on empty state ([`normalize_ranked`]).
pub fn normalize_ranked_append(
    base: &IdRel,
    sig: &[u32],
    start: usize,
    out: &mut IdRel,
    seen: &mut IdSet,
) {
    let n_distinct = sig.iter().map(|&r| r + 1).max().unwrap_or(0) as usize;
    // First source position of each rank.
    let src_pos: Vec<usize> = (0..n_distinct as u32)
        .map(|r| sig.iter().position(|&s| s == r).expect("rank present"))
        .collect();
    // Positions that must agree (repeated variables) — resolved to column
    // slices once, outside the row loop.
    let eq_cols: Vec<(&[ValueId], &[ValueId])> = sig
        .iter()
        .enumerate()
        .filter_map(|(i, &r)| {
            let first = src_pos[r as usize];
            (first != i).then(|| (base.col(first), base.col(i)))
        })
        .collect();
    let src_cols: Vec<&[ValueId]> = src_pos.iter().map(|&p| base.col(p)).collect();
    let mut buf: Vec<ValueId> = Vec::with_capacity(n_distinct);
    for row in start..base.len() {
        // Tombstoned rows of a churned base mirror are not part of the
        // relation; normalizations are always compact.
        if !base.is_live(row) {
            continue;
        }
        if eq_cols.iter().any(|&(a, b)| a[row] != b[row]) {
            continue;
        }
        buf.clear();
        buf.extend(src_cols.iter().map(|c| c[row]));
        if seen.insert(&buf) {
            out.push_row(&buf);
        }
    }
}

/// The atom-normalization of all live rows of `base` (see
/// [`normalize_ranked_append`]), along with the dedup set — cached
/// together so later delta appends can continue where this build stopped.
pub fn normalize_ranked(base: &IdRel, sig: &[u32]) -> (IdRel, IdSet) {
    let n_distinct = sig.iter().map(|&r| r + 1).max().unwrap_or(0) as usize;
    let mut out = IdRel::with_capacity(n_distinct, base.live_len());
    let mut seen = IdSet::with_capacity(base.live_len());
    normalize_ranked_append(base, sig, 0, &mut out, &mut seen);
    (out, seen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn rel_of_pairs(pairs: &[(i64, i64)]) -> (IdRel, Dictionary) {
        let mut dict = Dictionary::new();
        let rel = Relation::from_pairs(pairs.iter().copied());
        (IdRel::from_relation(&rel, &mut dict), dict)
    }

    #[test]
    fn columnar_layout_roundtrips() {
        let (r, dict) = rel_of_pairs(&[(1, 10), (2, 20), (1, 30)]);
        assert_eq!(r.arity(), 2);
        assert_eq!(r.len(), 3);
        assert_eq!(r.col(0).len(), 3);
        // Column 0 has 1 appearing twice with the same id.
        assert_eq!(r.col(0)[0], r.col(0)[2]);
        assert_ne!(r.col(0)[0], r.col(0)[1]);
        assert_eq!(dict.value(r.at(1, 1)), Value::Int(20));
        let back = r.decode(&dict);
        assert_eq!(back.row(2), &[Value::Int(1), Value::Int(30)]);
    }

    #[test]
    fn gather_row_reuses_buffer() {
        let (r, _) = rel_of_pairs(&[(5, 6), (7, 8)]);
        let mut buf = Vec::new();
        r.gather_row(1, &mut buf);
        assert_eq!(buf, vec![r.at(1, 0), r.at(1, 1)]);
        r.gather_row(0, &mut buf);
        assert_eq!(buf.len(), 2);
    }

    #[test]
    fn project_dedup_on_ids() {
        let (r, _) = rel_of_pairs(&[(1, 10), (1, 20), (2, 30)]);
        let p = r.project_dedup(&[0]);
        assert_eq!(p.arity(), 1);
        assert_eq!(p.len(), 2);
        let swapped = r.project_dedup(&[1, 0]);
        assert_eq!(swapped.at(0, 0), r.at(0, 1));
    }

    #[test]
    fn retain_rows_by_key_filters_in_place() {
        let (mut r, _) = rel_of_pairs(&[(1, 1), (2, 1), (3, 3)]);
        r.retain_rows_by_key(&[0, 1], |k| k[0] == k[1]);
        assert_eq!(r.len(), 2);
        assert_eq!(r.at(0, 0), r.at(0, 1));
        assert_eq!(r.at(1, 0), r.at(1, 1));
    }

    #[test]
    fn nullary_semantics() {
        let mut r = IdRel::new(0);
        assert!(r.is_empty());
        r.push_row(&[]);
        r.push_row(&[]);
        assert_eq!(r.len(), 1);
        r.retain_rows_by_key(&[], |_| false);
        assert!(r.is_empty());
    }

    #[test]
    fn dedup_rows_preserves_first_occurrence() {
        let (mut r, _) = rel_of_pairs(&[(1, 2), (3, 4), (1, 2)]);
        r.dedup_rows();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn parallel_interning_matches_sequential_content() {
        let mut rows: Vec<(i64, i64)> = Vec::new();
        for i in 0..999i64 {
            rows.push((i % 97, (i * 7) % 61));
        }
        let rel = Relation::from_pairs(rows.iter().copied());
        let mut seq_dict = Dictionary::new();
        let seq = IdRel::from_relation(&rel, &mut seq_dict);
        for workers in [2usize, 3, 5] {
            let mut par_dict = Dictionary::new();
            let par = IdRel::from_relation_parallel(&rel, &mut par_dict, workers);
            assert_eq!(par.len(), seq.len());
            assert_eq!(par_dict.len(), seq_dict.len(), "same distinct values");
            // Ids may differ between the two paths; decoded rows must not.
            assert_eq!(par.decode(&par_dict), seq.decode(&seq_dict));
        }
    }

    #[test]
    fn parallel_interning_reuses_existing_ids() {
        let rel = Relation::from_pairs([(1, 2), (3, 4), (1, 4)]);
        let mut dict = Dictionary::new();
        let known: Vec<ValueId> = [1i64, 2, 3, 4]
            .iter()
            .map(|&v| dict.intern(Value::Int(v)))
            .collect();
        let r = IdRel::from_relation_parallel(&rel, &mut dict, 2);
        assert_eq!(r.at(0, 0), known[0]);
        assert_eq!(r.at(2, 1), known[3]);
        assert_eq!(dict.len(), 5, "no value re-interned under a new id");
    }

    #[test]
    fn retain_by_index_matches_retain_by_key() {
        let mut dict = Dictionary::new();
        let left = Relation::from_pairs([(1, 10), (2, 20), (3, 30), (2, 40), (9, 50)]);
        let mut a = IdRel::from_relation(&left, &mut dict);
        let mut b = a.clone();
        let right = IdRel::from_relation(&Relation::from_pairs([(2, 0), (3, 1)]), &mut dict);
        let idx = HashIndex::build(&right, &[0]);
        let mut scratch = ProbeScratch::default();
        a.retain_rows_by_index(&[0], &idx, &mut scratch);
        b.retain_rows_by_key(&[0], |k| !idx.get(k).is_empty());
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        // Scratch reuse across passes: a second retain on fresh data.
        let mut c = IdRel::from_relation(&Relation::from_pairs([(3, 1), (4, 2)]), &mut dict);
        c.retain_rows_by_index(&[0], &idx, &mut scratch);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn idset_capacity_paths_agree_on_duplicate_heavy_input() {
        // 1000 rows, 3 distinct keys: preallocating `rel.len()` slots must
        // not change observable behavior, only avoid growth rehashes.
        let pairs: Vec<(i64, i64)> = (0..1000).map(|i| (i % 3, i % 3 + 10)).collect();
        let (r, _) = rel_of_pairs(&pairs);
        let s = IdSet::build_projected(&r, &[0]);
        assert_eq!(s.len(), 3);
        assert!(s.contains(&[r.at(0, 0)]));
        assert!(!s.contains(&[r.at(0, 1)]));
        let full = IdSet::build(&r);
        assert_eq!(full.len(), 3, "duplicates collapse to distinct rows");
        let mut manual = IdSet::with_capacity(r.len());
        for i in 0..r.len() {
            manual.insert(&[r.at(i, 0)]);
        }
        assert_eq!(manual.len(), s.len());
    }

    #[test]
    fn append_delta_adds_a_segment_with_stable_ids() {
        let (mut r, mut dict) = rel_of_pairs(&[(1, 10), (2, 20)]);
        let id_one = r.at(0, 0);
        let dict_before = dict.len();
        let added = r.append_delta(&Relation::from_pairs([(1, 99), (3, 30)]), &mut dict);
        assert_eq!(added, 2);
        assert_eq!(r.len(), 4);
        assert_eq!(r.live_len(), 4);
        assert_eq!(r.n_segments(), 2);
        assert_eq!(r.at(2, 0), id_one, "surviving values keep their ids");
        assert_eq!(dict.len(), dict_before + 3, "only delta values interned");
        assert_eq!(r.decode(&dict).len(), 4);
    }

    #[test]
    fn mark_deleted_tombstones_without_moving_rows() {
        let (mut r, dict) = rel_of_pairs(&[(1, 10), (2, 20), (3, 30)]);
        let gone = dict.lookup(Value::Int(2)).unwrap();
        let killed = r.mark_deleted_where(|row| row[0] == gone);
        assert_eq!(killed, 1);
        assert_eq!(r.len(), 3, "physical rows stay put");
        assert_eq!(r.live_len(), 2);
        assert!(r.is_live(0) && !r.is_live(1) && r.is_live(2));
        assert!((r.tombstone_fraction() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.decode(&dict).len(), 2, "decode skips dead rows");
        assert_eq!(r.project_dedup(&[0]).len(), 2);
        assert_eq!(IdSet::build_projected(&r, &[0]).len(), 2);
        // Marking again matches nothing: the dead row is not revisited.
        let again = r.mark_deleted_where(|row| row[0] == gone);
        assert_eq!(again, 0);
    }

    #[test]
    fn retains_compact_tombstones_away() {
        let (mut r, dict) = rel_of_pairs(&[(1, 10), (2, 20), (3, 30)]);
        let two = dict.lookup(Value::Int(2)).unwrap();
        r.mark_deleted_where(|row| row[0] == two);
        r.retain_rows_by_key(&[0], |_| true);
        assert_eq!(r.len(), 2);
        assert!(!r.has_tombstones());
        assert_eq!(r.decode(&dict).len(), 2);
    }

    #[test]
    fn delta_after_delete_keeps_later_rows_live() {
        let (mut r, mut dict) = rel_of_pairs(&[(1, 10), (2, 20)]);
        let one = dict.lookup(Value::Int(1)).unwrap();
        r.mark_deleted_where(|row| row[0] == one);
        r.append_delta(&Relation::from_pairs([(4, 40)]), &mut dict);
        assert_eq!(r.len(), 3);
        assert_eq!(r.live_len(), 2);
        assert!(r.is_live(2), "appended rows are live past the bitmap end");
        assert_eq!(r.n_segments(), 2);
    }

    #[test]
    fn nullary_delta_and_delete_roundtrip() {
        let mut r = IdRel::new(0);
        let mut dict = Dictionary::new();
        let mut unit = Relation::new(0);
        unit.push_row(&[]);
        assert_eq!(r.append_delta(&unit, &mut dict), 1);
        assert_eq!(r.live_len(), 1);
        assert_eq!(r.mark_deleted_where(|_| true), 1);
        assert_eq!(r.live_len(), 0);
        assert_eq!(r.append_delta(&unit, &mut dict), 1, "delta revives");
        assert_eq!(r.live_len(), 1);
    }

    #[test]
    fn idset_projected_membership() {
        let (r, _) = rel_of_pairs(&[(1, 2), (1, 3)]);
        let s = IdSet::build_projected(&r, &[0]);
        assert_eq!(s.len(), 1);
        assert!(s.contains(&[r.at(0, 0)]));
        assert!(!s.contains(&[r.at(0, 1)]));
        let full = IdSet::build(&r);
        assert_eq!(full.len(), 2);
    }
}
