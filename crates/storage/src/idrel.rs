//! Columnar interned relations.
//!
//! [`IdRel`] is the execution-side mirror of [`Relation`]: one dense
//! `Vec<ValueId>` per column. All join-time work (normalization, semijoins,
//! index builds, enumeration cursors) runs on this layout — 4-byte ids,
//! column slices directly addressable via [`IdRel::col`] — while the
//! row-major [`Relation`] stays the ingestion/API format.

use crate::dictionary::{Dictionary, ValueId};
use crate::key::InlineKey;
use crate::relation::Relation;
use std::collections::HashSet;

/// A relation of interned values in columnar layout.
///
/// Row `r` is `(col(0)[r], col(1)[r], …)`. Arity-0 relations hold zero or
/// one (empty) rows, tracked by `n_rows` alone.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IdRel {
    n_rows: usize,
    cols: Vec<Vec<ValueId>>,
}

impl IdRel {
    /// An empty relation of the given arity.
    pub fn new(arity: usize) -> IdRel {
        IdRel {
            n_rows: 0,
            cols: vec![Vec::new(); arity],
        }
    }

    /// An empty relation with row capacity.
    pub fn with_capacity(arity: usize, rows: usize) -> IdRel {
        IdRel {
            n_rows: 0,
            // Not `vec![Vec::with_capacity(rows); arity]`: cloning an empty
            // Vec drops its capacity, which would leave every column but
            // one unallocated.
            cols: (0..arity).map(|_| Vec::with_capacity(rows)).collect(),
        }
    }

    /// Interns every value of `rel` into `dict` and lays the result out
    /// column-wise. Row order is preserved.
    pub fn from_relation(rel: &Relation, dict: &mut Dictionary) -> IdRel {
        let mut out = IdRel::with_capacity(rel.arity(), rel.len());
        for row in rel.iter_rows() {
            for (c, &v) in row.iter().enumerate() {
                out.cols[c].push(dict.intern(v));
            }
            out.n_rows += 1;
        }
        out
    }

    /// The arity (number of columns).
    #[inline]
    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.n_rows
    }

    /// Whether there are no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// Column `c` as a dense id slice — the columnar access path.
    #[inline]
    pub fn col(&self, c: usize) -> &[ValueId] {
        &self.cols[c]
    }

    /// The id at `(row, col)`.
    #[inline]
    pub fn at(&self, row: usize, col: usize) -> ValueId {
        self.cols[col][row]
    }

    /// Appends a row. Panics on arity mismatch. Arity-0 relations saturate
    /// at one row (the single empty tuple).
    #[inline]
    pub fn push_row(&mut self, row: &[ValueId]) {
        assert_eq!(row.len(), self.arity(), "row arity mismatch");
        if self.arity() == 0 {
            self.n_rows = 1;
            return;
        }
        for (c, &id) in row.iter().enumerate() {
            self.cols[c].push(id);
        }
        self.n_rows += 1;
    }

    /// Copies row `r`'s ids into `out` (cleared first). Reusing one buffer
    /// across calls keeps row gathering allocation-free.
    #[inline]
    pub fn gather_row(&self, r: usize, out: &mut Vec<ValueId>) {
        out.clear();
        for col in &self.cols {
            out.push(col[r]);
        }
    }

    /// Projects onto `cols` (by position), deduplicating rows.
    pub fn project_dedup(&self, cols: &[usize]) -> IdRel {
        let mut seen: HashSet<InlineKey> = HashSet::with_capacity(self.n_rows);
        let mut out = IdRel::new(cols.len());
        let mut buf: Vec<ValueId> = Vec::with_capacity(cols.len());
        for r in 0..self.n_rows {
            buf.clear();
            buf.extend(cols.iter().map(|&c| self.cols[c][r]));
            if seen.insert(InlineKey::from_slice(&buf)) {
                out.push_row(&buf);
            }
        }
        out
    }

    /// Keeps only rows whose ids (projected onto `key_cols`) pass `pred`.
    /// The predicate sees the projected key in a reused buffer.
    pub fn retain_rows_by_key<F>(&mut self, key_cols: &[usize], mut pred: F)
    where
        F: FnMut(&[ValueId]) -> bool,
    {
        if self.arity() == 0 {
            if self.n_rows == 1 && !pred(&[]) {
                self.n_rows = 0;
            }
            return;
        }
        let mut buf: Vec<ValueId> = Vec::with_capacity(key_cols.len());
        let mut write = 0usize;
        for read in 0..self.n_rows {
            buf.clear();
            buf.extend(key_cols.iter().map(|&c| self.cols[c][read]));
            if pred(&buf) {
                if write != read {
                    for col in self.cols.iter_mut() {
                        col[write] = col[read];
                    }
                }
                write += 1;
            }
        }
        for col in self.cols.iter_mut() {
            col.truncate(write);
        }
        self.n_rows = write;
    }

    /// Deduplicates rows, preserving first-occurrence order.
    pub fn dedup_rows(&mut self) {
        if self.arity() == 0 || self.n_rows <= 1 {
            return;
        }
        let mut seen: HashSet<InlineKey> = HashSet::with_capacity(self.n_rows);
        let all: Vec<usize> = (0..self.arity()).collect();
        self.retain_rows_by_key(&all, |row| seen.insert(InlineKey::from_slice(row)));
    }

    /// Decodes back to a row-major [`Relation`] (answer-boundary only).
    pub fn decode(&self, dict: &Dictionary) -> Relation {
        let mut out = Relation::with_capacity(self.arity(), self.n_rows);
        let mut buf = Vec::with_capacity(self.arity());
        for r in 0..self.n_rows {
            buf.clear();
            buf.extend(self.cols.iter().map(|col| dict.value(col[r])));
            out.push_row(&buf);
        }
        out
    }
}

/// A hash set of projected id rows: the id-side analogue of
/// [`RowSet`](crate::RowSet), probed with borrowed `&[ValueId]` keys
/// (allocation-free for keys up to [`InlineKey::INLINE`] ids).
#[derive(Clone, Debug, Default)]
pub struct IdSet {
    set: HashSet<InlineKey>,
}

impl IdSet {
    /// An empty set.
    pub fn new() -> IdSet {
        IdSet::default()
    }

    /// The projections of all rows of `rel` onto `cols`.
    pub fn build_projected(rel: &IdRel, cols: &[usize]) -> IdSet {
        let mut set = HashSet::with_capacity(rel.len());
        let mut buf: Vec<ValueId> = Vec::with_capacity(cols.len());
        for r in 0..rel.len() {
            buf.clear();
            buf.extend(cols.iter().map(|&c| rel.col(c)[r]));
            set.insert(InlineKey::from_slice(&buf));
        }
        IdSet { set }
    }

    /// All full rows of `rel`.
    pub fn build(rel: &IdRel) -> IdSet {
        let all: Vec<usize> = (0..rel.arity()).collect();
        IdSet::build_projected(rel, &all)
    }

    /// Membership test with a borrowed key — no allocation.
    #[inline]
    pub fn contains(&self, key: &[ValueId]) -> bool {
        self.set.contains(key)
    }

    /// Inserts a key; returns whether it was new.
    #[inline]
    pub fn insert(&mut self, key: &[ValueId]) -> bool {
        self.set.insert(InlineKey::from_slice(key))
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn rel_of_pairs(pairs: &[(i64, i64)]) -> (IdRel, Dictionary) {
        let mut dict = Dictionary::new();
        let rel = Relation::from_pairs(pairs.iter().copied());
        (IdRel::from_relation(&rel, &mut dict), dict)
    }

    #[test]
    fn columnar_layout_roundtrips() {
        let (r, dict) = rel_of_pairs(&[(1, 10), (2, 20), (1, 30)]);
        assert_eq!(r.arity(), 2);
        assert_eq!(r.len(), 3);
        assert_eq!(r.col(0).len(), 3);
        // Column 0 has 1 appearing twice with the same id.
        assert_eq!(r.col(0)[0], r.col(0)[2]);
        assert_ne!(r.col(0)[0], r.col(0)[1]);
        assert_eq!(dict.value(r.at(1, 1)), Value::Int(20));
        let back = r.decode(&dict);
        assert_eq!(back.row(2), &[Value::Int(1), Value::Int(30)]);
    }

    #[test]
    fn gather_row_reuses_buffer() {
        let (r, _) = rel_of_pairs(&[(5, 6), (7, 8)]);
        let mut buf = Vec::new();
        r.gather_row(1, &mut buf);
        assert_eq!(buf, vec![r.at(1, 0), r.at(1, 1)]);
        r.gather_row(0, &mut buf);
        assert_eq!(buf.len(), 2);
    }

    #[test]
    fn project_dedup_on_ids() {
        let (r, _) = rel_of_pairs(&[(1, 10), (1, 20), (2, 30)]);
        let p = r.project_dedup(&[0]);
        assert_eq!(p.arity(), 1);
        assert_eq!(p.len(), 2);
        let swapped = r.project_dedup(&[1, 0]);
        assert_eq!(swapped.at(0, 0), r.at(0, 1));
    }

    #[test]
    fn retain_rows_by_key_filters_in_place() {
        let (mut r, _) = rel_of_pairs(&[(1, 1), (2, 1), (3, 3)]);
        r.retain_rows_by_key(&[0, 1], |k| k[0] == k[1]);
        assert_eq!(r.len(), 2);
        assert_eq!(r.at(0, 0), r.at(0, 1));
        assert_eq!(r.at(1, 0), r.at(1, 1));
    }

    #[test]
    fn nullary_semantics() {
        let mut r = IdRel::new(0);
        assert!(r.is_empty());
        r.push_row(&[]);
        r.push_row(&[]);
        assert_eq!(r.len(), 1);
        r.retain_rows_by_key(&[], |_| false);
        assert!(r.is_empty());
    }

    #[test]
    fn dedup_rows_preserves_first_occurrence() {
        let (mut r, _) = rel_of_pairs(&[(1, 2), (3, 4), (1, 2)]);
        r.dedup_rows();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn idset_projected_membership() {
        let (r, _) = rel_of_pairs(&[(1, 2), (1, 3)]);
        let s = IdSet::build_projected(&r, &[0]);
        assert_eq!(s.len(), 1);
        assert!(s.contains(&[r.at(0, 0)]));
        assert!(!s.contains(&[r.at(0, 1)]));
        let full = IdSet::build(&r);
        assert_eq!(full.len(), 2);
    }
}
