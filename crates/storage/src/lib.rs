//! Relational storage substrate for the `ucq-enum` workspace.
//!
//! Values ([`Value`]), owned tuples ([`Tuple`]), flat row-major relations
//! ([`Relation`]), hash indexes ([`HashIndex`], [`RowSet`]) and named
//! instances ([`Instance`]). The value domain includes the tagged constants
//! and `⊥` filler used by the paper's lower-bound encodings (Lemma 14,
//! Examples 18/20/22/31/39).

pub mod index;
pub mod instance;
pub mod relation;
pub mod text;
pub mod tuple;
pub mod value;

pub use index::{HashIndex, RowSet};
pub use instance::Instance;
pub use relation::Relation;
pub use text::{parse_instance, to_text, TextError};
pub use tuple::Tuple;
pub use value::Value;
