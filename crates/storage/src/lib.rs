//! Relational storage substrate for the `ucq-enum` workspace.
//!
//! Values ([`Value`]), owned tuples ([`Tuple`]), flat row-major relations
//! ([`Relation`]), and named instances ([`Instance`]) form the ingestion/API
//! layer. The value domain includes the tagged constants and `⊥` filler used
//! by the paper's lower-bound encodings (Lemma 14, Examples 18/20/22/31/39).
//!
//! Execution runs on the interned layer: a [`Dictionary`] maps values to
//! dense [`ValueId`]s, [`IdRel`] is the columnar id mirror of a relation,
//! [`HashIndex`]/[`IdSet`] provide O(1) lookups with allocation-free
//! borrowed `&[ValueId]` keys ([`InlineKey`]), and [`EvalContext`] is the
//! per-instance session object caching interned relations, normalized
//! projections and indexes ([`IndexCache`]) across every pipeline that
//! evaluates the same instance.

#![forbid(unsafe_code)]

pub mod block;
pub mod context;
pub mod dictionary;
pub mod epoch;
pub mod faults;
pub mod frozen;
pub mod hash;
pub mod idrel;
pub mod index;
pub mod instance;
pub mod key;
pub mod par;
pub mod relation;
mod static_asserts;
pub mod stats;
pub mod sync;
pub mod text;
pub mod tuple;
pub mod value;

pub use block::IdBlock;
pub use context::{ContextStats, EvalContext, IndexCache, IngestStats, RelChurn};
pub use dictionary::{Dictionary, ValueId};
pub use epoch::EpochCell;
pub use frozen::{CtxView, FrozenContext};
pub use hash::{
    fast_map_with_capacity, fast_set_with_capacity, fx_hash_of, seeded_map_with_capacity, FastMap,
    FastSet, FxBuildHasher, SeededFastMap, SeededFxBuildHasher,
};
pub use idrel::{normalize_ranked, normalize_ranked_append, IdRel, IdSet, ProbeScratch};
pub use index::{HashIndex, ProbeBatch, RowSet};
pub use instance::Instance;
pub use key::InlineKey;
pub use relation::Relation;
pub use stats::RelStats;
pub use text::{parse_instance, to_text, TextError};
pub use tuple::Tuple;
pub use value::Value;
