//! Flat answer blocks for block-at-a-time enumeration.
//!
//! The id-level enumeration spine moves answers between stages as
//! [`IdBlock`]s: a reusable flat `Vec<ValueId>` holding up to a fixed
//! number of rows of a fixed arity (the stride). Producers append rows
//! until the block is full or they are exhausted; consumers read rows as
//! borrowed `&[ValueId]` slices. One block buffer lives for the whole
//! enumeration, so the per-answer path allocates nothing and a whole
//! block's worth of virtual-dispatch/bookkeeping overhead is paid once.
//!
//! Arity-0 rows (Boolean answers) are represented by the row count alone,
//! mirroring the nullary semantics of [`IdRel`](crate::IdRel).

use crate::dictionary::ValueId;

/// A reusable flat block of interned answer rows (fixed arity).
#[derive(Clone, Debug)]
pub struct IdBlock {
    arity: usize,
    max_rows: usize,
    n_rows: usize,
    ids: Vec<ValueId>,
}

impl IdBlock {
    /// An empty block holding up to `max_rows` rows of `arity` ids each.
    pub fn new(arity: usize, max_rows: usize) -> IdBlock {
        assert!(max_rows >= 1, "blocks must hold at least one row");
        IdBlock {
            arity,
            max_rows,
            n_rows: 0,
            ids: Vec::with_capacity(arity * max_rows),
        }
    }

    /// Ids per row.
    #[inline]
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Maximum number of rows the block accepts before [`IdBlock::is_full`].
    #[inline]
    pub fn max_rows(&self) -> usize {
        self.max_rows
    }

    /// Lowers or restores the fill limit (consumers that want a partial
    /// fill — e.g. a ramping pump — set this before handing the block to a
    /// producer). Must be at least the current row count and at least 1.
    #[inline]
    pub fn set_max_rows(&mut self, max_rows: usize) {
        assert!(max_rows >= 1 && max_rows >= self.n_rows, "limit below fill");
        self.max_rows = max_rows;
    }

    /// Number of rows currently in the block.
    #[inline]
    pub fn len(&self) -> usize {
        self.n_rows
    }

    /// Whether the block holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// Whether the block is at capacity (producers must stop).
    #[inline]
    pub fn is_full(&self) -> bool {
        self.n_rows >= self.max_rows
    }

    /// Rows still accepted before the block is full.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.max_rows - self.n_rows
    }

    /// Drops all rows, keeping the allocation.
    #[inline]
    pub fn clear(&mut self) {
        self.n_rows = 0;
        self.ids.clear();
    }

    /// Row `r` as a borrowed id slice (empty for arity 0).
    #[inline]
    pub fn row(&self, r: usize) -> &[ValueId] {
        debug_assert!(r < self.n_rows, "row out of bounds");
        &self.ids[r * self.arity..(r + 1) * self.arity]
    }

    /// Iterates over the rows as id slices.
    pub fn rows(&self) -> impl Iterator<Item = &[ValueId]> {
        (0..self.n_rows).map(move |r| self.row(r))
    }

    /// The whole block as one flat id run (`arity` ids per row) — the shape
    /// [`HashIndex::probe_batch`](crate::HashIndex::probe_batch) consumes.
    #[inline]
    pub fn ids(&self) -> &[ValueId] {
        &self.ids
    }

    /// Appends one row. Panics on arity mismatch.
    #[inline]
    pub fn push_row(&mut self, row: &[ValueId]) {
        assert_eq!(row.len(), self.arity, "row arity mismatch");
        debug_assert!(!self.is_full(), "push into a full block");
        self.ids.extend_from_slice(row);
        self.n_rows += 1;
    }

    /// Appends one row from an iterator that must yield exactly `arity`
    /// ids — the allocation-free path for producers that project rows out
    /// of a larger binding (e.g. the CDY output projection).
    #[inline]
    pub fn push_row_from(&mut self, row: impl IntoIterator<Item = ValueId>) {
        debug_assert!(!self.is_full(), "push into a full block");
        let before = self.ids.len();
        self.ids.extend(row);
        debug_assert_eq!(self.ids.len() - before, self.arity, "row arity mismatch");
        self.n_rows += 1;
    }

    /// Appends `rows` rows from a flat id run (`arity * rows` ids; empty for
    /// arity 0) — the bulk path for replaying materialized answer tables.
    #[inline]
    pub fn extend_flat(&mut self, ids: &[ValueId], rows: usize) {
        debug_assert_eq!(ids.len(), self.arity * rows, "partial row in flat run");
        debug_assert!(rows <= self.remaining(), "flat run overflows the block");
        self.ids.extend_from_slice(ids);
        self.n_rows += rows;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(xs: &[u32]) -> Vec<ValueId> {
        xs.iter().map(|&x| ValueId(x)).collect()
    }

    #[test]
    fn push_and_read_rows() {
        let mut b = IdBlock::new(2, 3);
        assert!(b.is_empty());
        assert_eq!(b.remaining(), 3);
        b.push_row(&ids(&[1, 2]));
        b.push_row_from(ids(&[3, 4]));
        assert_eq!(b.len(), 2);
        assert_eq!(b.row(0), ids(&[1, 2]).as_slice());
        assert_eq!(b.row(1), ids(&[3, 4]).as_slice());
        assert_eq!(b.rows().count(), 2);
        assert!(!b.is_full());
        b.push_row(&ids(&[5, 6]));
        assert!(b.is_full());
        assert_eq!(b.ids().len(), 6);
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.ids().len(), 0);
    }

    #[test]
    fn extend_flat_bulk_append() {
        let mut b = IdBlock::new(2, 4);
        let run = ids(&[1, 2, 3, 4, 5, 6]);
        b.extend_flat(&run, 3);
        assert_eq!(b.len(), 3);
        assert_eq!(b.row(2), ids(&[5, 6]).as_slice());
    }

    #[test]
    fn nullary_rows_are_counted() {
        let mut b = IdBlock::new(0, 2);
        b.push_row(&[]);
        b.extend_flat(&[], 1);
        assert_eq!(b.len(), 2);
        assert!(b.is_full());
        assert_eq!(b.row(1), &[] as &[ValueId]);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_rejected() {
        let mut b = IdBlock::new(2, 2);
        b.push_row(&ids(&[1]));
    }
}
