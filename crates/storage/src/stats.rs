//! Per-relation statistics for the cost-based planner.
//!
//! [`RelStats`] summarizes one interned relation ([`IdRel`]) in the three
//! numbers a cardinality model needs per column: row count, distinct-value
//! count, and the worst-case fanout (the largest group of rows sharing one
//! value). The numbers come cheaply from machinery the session already
//! builds: when a single-column [`HashIndex`] is cached for a column, its
//! CSR `offsets` array *is* the group-size table — distinct count is
//! `n_keys()` and max fanout is the largest offset gap — so harvesting
//! costs one O(distinct) scan and touches no row data. Columns without a
//! cached index fall back to one counting pass over the column.
//!
//! Stats are cached on the evaluation context keyed by relation identity
//! (see [`EvalContext::rel_stats`](crate::EvalContext::rel_stats)), and a
//! **stats epoch** on the context bumps whenever a new base relation is
//! interned — plan caches key on `(query fingerprint, epoch)` so a changed
//! instance invalidates stale plans without any bookkeeping.

use crate::hash::FastMap;
use crate::idrel::IdRel;
use crate::index::HashIndex;

/// Per-column statistics of one interned relation. See the module docs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RelStats {
    /// Number of rows.
    pub rows: usize,
    /// Distinct values per column.
    pub distinct: Vec<usize>,
    /// Largest number of rows sharing one value, per column (0 for an
    /// empty relation).
    pub max_fanout: Vec<usize>,
}

impl RelStats {
    /// The relation's arity.
    pub fn arity(&self) -> usize {
        self.distinct.len()
    }

    /// Average rows per distinct value of column `c` (0 when empty).
    pub fn avg_fanout(&self, c: usize) -> f64 {
        if self.distinct[c] == 0 {
            0.0
        } else {
            self.rows as f64 / self.distinct[c] as f64
        }
    }

    /// The `(distinct, max fanout)` of one column read straight off a CSR
    /// index's offsets — no row data touched. Groups a tombstone merge
    /// emptied are not counted as distinct values.
    pub fn column_from_index(idx: &HashIndex) -> (usize, usize) {
        idx.group_stats()
    }

    /// Computes stats for `rel`. `cached_index` lets the caller supply
    /// `(distinct, max fanout)` for columns that already have a built
    /// single-column index (the cheap path); the rest are counted in one
    /// pass per column.
    pub fn compute_with(
        rel: &IdRel,
        mut cached_index: impl FnMut(usize) -> Option<(usize, usize)>,
    ) -> RelStats {
        let rows = rel.live_len();
        let arity = rel.arity();
        let mut distinct = Vec::with_capacity(arity);
        let mut max_fanout = Vec::with_capacity(arity);
        let mut counts: FastMap<crate::dictionary::ValueId, u32> = FastMap::default();
        for c in 0..arity {
            if let Some((d, m)) = cached_index(c) {
                distinct.push(d);
                max_fanout.push(m);
                continue;
            }
            counts.clear();
            if rel.has_tombstones() {
                let col = rel.col(c);
                for (r, &id) in col.iter().enumerate() {
                    if rel.is_live(r) {
                        *counts.entry(id).or_insert(0) += 1;
                    }
                }
            } else {
                for &id in rel.col(c) {
                    *counts.entry(id).or_insert(0) += 1;
                }
            }
            distinct.push(counts.len());
            max_fanout.push(counts.values().max().copied().unwrap_or(0) as usize);
        }
        RelStats {
            rows,
            distinct,
            max_fanout,
        }
    }

    /// Computes stats for `rel` with no cached indexes available.
    pub fn compute(rel: &IdRel) -> RelStats {
        RelStats::compute_with(rel, |_| None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dictionary::{Dictionary, ValueId};
    use crate::relation::Relation;

    fn interned(pairs: &[(i64, i64)]) -> IdRel {
        let mut dict = Dictionary::new();
        let rel = Relation::from_pairs(pairs.iter().copied());
        IdRel::from_relation(&rel, &mut dict)
    }

    #[test]
    fn counted_stats_match_shape() {
        let r = interned(&[(1, 10), (1, 20), (2, 10), (3, 10)]);
        let s = RelStats::compute(&r);
        assert_eq!(s.rows, 4);
        assert_eq!(s.distinct, vec![3, 2]);
        assert_eq!(s.max_fanout, vec![2, 3]);
        assert!((s.avg_fanout(0) - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn index_harvest_agrees_with_counting() {
        let mut rel = IdRel::new(2);
        let mut x = 0x9e37u32;
        for _ in 0..500 {
            x ^= x << 7;
            x ^= x >> 9;
            rel.push_row(&[ValueId(x % 23), ValueId(x % 7)]);
        }
        let counted = RelStats::compute(&rel);
        let idx0 = HashIndex::build(&rel, &[0]);
        let idx1 = HashIndex::build(&rel, &[1]);
        let harvested = RelStats::compute_with(&rel, |c| {
            Some(RelStats::column_from_index(if c == 0 {
                &idx0
            } else {
                &idx1
            }))
        });
        assert_eq!(counted, harvested);
    }

    #[test]
    fn empty_relation_stats() {
        let r = IdRel::new(2);
        let s = RelStats::compute(&r);
        assert_eq!(s.rows, 0);
        assert_eq!(s.distinct, vec![0, 0]);
        assert_eq!(s.max_fanout, vec![0, 0]);
        assert_eq!(s.avg_fanout(0), 0.0);
    }
}
