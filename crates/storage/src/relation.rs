//! Row-major relation storage.

use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::HashSet;
use std::fmt;

/// A finite relation: a multiset-free set of rows with a fixed arity, stored
/// row-major in a single flat vector.
///
/// Construction does not deduplicate (input data may legitimately carry
/// duplicates); call [`Relation::sort_dedup`] or build through
/// [`Relation::from_rows_dedup`] when set semantics are required. All query
/// evaluation paths in the workspace normalize their inputs.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Relation {
    arity: usize,
    data: Vec<Value>,
}

impl Relation {
    /// Creates an empty relation of the given arity.
    pub fn new(arity: usize) -> Relation {
        Relation {
            arity,
            data: Vec::new(),
        }
    }

    /// Creates an empty relation with capacity for `rows` rows.
    pub fn with_capacity(arity: usize, rows: usize) -> Relation {
        Relation {
            arity,
            data: Vec::with_capacity(arity * rows),
        }
    }

    /// Builds a relation from an iterator of rows, keeping duplicates.
    pub fn from_rows<'a, I>(arity: usize, rows: I) -> Relation
    where
        I: IntoIterator<Item = &'a [Value]>,
    {
        let mut r = Relation::new(arity);
        for row in rows {
            r.push_row(row);
        }
        r
    }

    /// Builds a relation from an iterator of rows, dropping duplicates.
    pub fn from_rows_dedup<'a, I>(arity: usize, rows: I) -> Relation
    where
        I: IntoIterator<Item = &'a [Value]>,
    {
        let mut seen: HashSet<Box<[Value]>> = HashSet::new();
        let mut r = Relation::new(arity);
        for row in rows {
            if seen.insert(row.into()) {
                r.push_row(row);
            }
        }
        r
    }

    /// Builds a binary relation from integer pairs — the common case in the
    /// graph/matrix reductions.
    pub fn from_pairs<I: IntoIterator<Item = (i64, i64)>>(pairs: I) -> Relation {
        let mut r = Relation::new(2);
        for (a, b) in pairs {
            r.push_row(&[Value::Int(a), Value::Int(b)]);
        }
        r
    }

    /// The arity (number of columns).
    #[inline]
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        // Arity-0 relations hold either zero rows or one empty row; we
        // encode "one empty row" as a single sentinel in `data`.
        self.data
            .len()
            .checked_div(self.arity)
            .unwrap_or(self.data.len())
    }

    /// Whether the relation has no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends a row. Panics on arity mismatch.
    #[inline]
    pub fn push_row(&mut self, row: &[Value]) {
        assert_eq!(row.len(), self.arity, "row arity mismatch");
        if self.arity == 0 {
            // Represent the empty row with one sentinel so len() counts it.
            if self.data.is_empty() {
                self.data.push(Value::Bottom);
            }
        } else {
            self.data.extend_from_slice(row);
        }
    }

    /// The `i`-th row.
    #[inline]
    pub fn row(&self, i: usize) -> &[Value] {
        if self.arity == 0 {
            &[]
        } else {
            &self.data[i * self.arity..(i + 1) * self.arity]
        }
    }

    /// Iterates over all rows.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[Value]> + '_ {
        (0..self.len()).map(move |i| self.row(i))
    }

    /// Sorts rows lexicographically and removes duplicates.
    pub fn sort_dedup(&mut self) {
        if self.arity == 0 || self.len() <= 1 {
            return;
        }
        let mut rows: Vec<&[Value]> = self.iter_rows().collect();
        rows.sort_unstable();
        rows.dedup();
        let mut data = Vec::with_capacity(rows.len() * self.arity);
        for row in rows {
            data.extend_from_slice(row);
        }
        self.data = data;
    }

    /// Projects onto `cols` (by position), deduplicating the result.
    pub fn project_dedup(&self, cols: &[usize]) -> Relation {
        let mut seen: HashSet<Box<[Value]>> = HashSet::with_capacity(self.len());
        let mut out = Relation::new(cols.len());
        let mut buf: Vec<Value> = Vec::with_capacity(cols.len());
        for row in self.iter_rows() {
            buf.clear();
            buf.extend(cols.iter().map(|&c| row[c]));
            if seen.insert(buf.as_slice().into()) {
                out.push_row(&buf);
            }
        }
        out
    }

    /// Keeps only rows satisfying the predicate.
    pub fn retain_rows<F: FnMut(&[Value]) -> bool>(&mut self, mut pred: F) {
        if self.arity == 0 {
            if !self.data.is_empty() && !pred(&[]) {
                self.data.clear();
            }
            return;
        }
        let arity = self.arity;
        let mut write = 0usize;
        for read in 0..self.len() {
            let keep = {
                let row = &self.data[read * arity..(read + 1) * arity];
                pred(row)
            };
            if keep {
                if write != read {
                    let (dst, src) = self.data.split_at_mut(read * arity);
                    dst[write * arity..(write + 1) * arity].copy_from_slice(&src[..arity]);
                }
                write += 1;
            }
        }
        self.data.truncate(write * arity);
    }

    /// Collects all rows into owned [`Tuple`]s.
    pub fn to_tuples(&self) -> Vec<Tuple> {
        self.iter_rows().map(Tuple::from_row).collect()
    }

    /// The interned columnar mirror of this relation (`col(i) ->
    /// &[ValueId]`): every value is interned into `dict` and laid out
    /// column-wise. Evaluation pipelines obtain this through
    /// [`crate::EvalContext::interned_rel`], which caches the result per
    /// relation.
    pub fn columnar(&self, dict: &mut crate::Dictionary) -> crate::IdRel {
        crate::IdRel::from_relation(self, dict)
    }

    /// Set-membership test by linear scan (use an index for hot paths).
    pub fn contains_row(&self, row: &[Value]) -> bool {
        self.iter_rows().any(|r| r == row)
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Relation(arity={}, rows={})", self.arity, self.len())?;
        for row in self.iter_rows().take(20) {
            writeln!(f, "  {}", Tuple::from_row(row))?;
        }
        if self.len() > 20 {
            writeln!(f, "  … {} more", self.len() - 20)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ivals(xs: &[i64]) -> Vec<Value> {
        xs.iter().map(|&x| Value::Int(x)).collect()
    }

    #[test]
    fn push_and_iterate() {
        let mut r = Relation::new(2);
        r.push_row(&ivals(&[1, 2]));
        r.push_row(&ivals(&[3, 4]));
        assert_eq!(r.len(), 2);
        assert_eq!(r.row(1), ivals(&[3, 4]).as_slice());
        assert_eq!(r.iter_rows().count(), 2);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        Relation::new(2).push_row(&ivals(&[1]));
    }

    #[test]
    fn nullary_relation_semantics() {
        let mut r = Relation::new(0);
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        r.push_row(&[]);
        r.push_row(&[]);
        assert_eq!(r.len(), 1, "arity-0 relations hold at most one row");
        assert_eq!(r.row(0), &[] as &[Value]);
    }

    #[test]
    fn sort_dedup_removes_duplicates() {
        let mut r = Relation::from_pairs([(3, 4), (1, 2), (3, 4), (1, 2)]);
        r.sort_dedup();
        assert_eq!(r.len(), 2);
        assert_eq!(r.row(0), ivals(&[1, 2]).as_slice());
    }

    #[test]
    fn from_rows_dedup() {
        let rows = [ivals(&[1, 2]), ivals(&[1, 2]), ivals(&[2, 3])];
        let r = Relation::from_rows_dedup(2, rows.iter().map(|r| r.as_slice()));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn projection_dedups() {
        let r = Relation::from_pairs([(1, 10), (1, 20), (2, 30)]);
        let p = r.project_dedup(&[0]);
        assert_eq!(p.arity(), 1);
        assert_eq!(p.len(), 2);
        let swapped = r.project_dedup(&[1, 0]);
        assert_eq!(swapped.row(0), ivals(&[10, 1]).as_slice());
    }

    #[test]
    fn retain_rows_filters_in_place() {
        let mut r = Relation::from_pairs([(1, 1), (2, 1), (3, 3)]);
        r.retain_rows(|row| row[0] == row[1]);
        assert_eq!(r.len(), 2);
        assert!(r.contains_row(&ivals(&[1, 1])));
        assert!(r.contains_row(&ivals(&[3, 3])));
        assert!(!r.contains_row(&ivals(&[2, 1])));
    }

    #[test]
    fn retain_on_nullary() {
        let mut r = Relation::new(0);
        r.push_row(&[]);
        r.retain_rows(|_| false);
        assert!(r.is_empty());
    }

    #[test]
    fn to_tuples_roundtrip() {
        let r = Relation::from_pairs([(1, 2)]);
        assert_eq!(r.to_tuples(), vec![Tuple::from(&[1i64, 2][..])]);
    }
}
