//! Dictionary interning: dense `u32` ids for [`Value`]s.
//!
//! The enumeration hot paths compare, hash, and shuffle values constantly;
//! doing that on 16-byte [`Value`] enums wastes cache and forces every hash
//! key to cover 16 bytes per column. [`Dictionary`] maps each distinct value
//! to a dense [`ValueId`] (4 bytes) exactly once — after preprocessing,
//! joins, semijoins, index probes and dedup all run on ids, and values are
//! only decoded back at the answer boundary.
//!
//! Id 0 is always `⊥` ([`Value::Bottom`]), so `ValueId::BOTTOM` doubles as
//! the cheap "unbound" filler in enumeration bindings.

use crate::hash::SeededFastMap;
use crate::value::Value;

/// A dense interned value id. Ids are only meaningful relative to the
/// [`Dictionary`] (equivalently, the [`EvalContext`](crate::EvalContext))
/// that issued them.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ValueId(pub u32);

impl ValueId {
    /// The id of [`Value::Bottom`] in every dictionary.
    pub const BOTTOM: ValueId = ValueId(0);

    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An append-only value interner.
///
/// `intern` is amortized O(1); `value` (decode) is an array lookup. A
/// dictionary never forgets: ids stay valid for its whole lifetime, which is
/// what lets [`HashIndex`](crate::HashIndex) groups, cached columnar
/// relations and enumeration cursors reference values as plain `u32`s.
#[derive(Clone, Debug)]
pub struct Dictionary {
    map: SeededFastMap<Value, ValueId>,
    values: Vec<Value>,
}

impl Dictionary {
    /// A dictionary holding only `⊥` (at [`ValueId::BOTTOM`]).
    pub fn new() -> Dictionary {
        let mut d = Dictionary {
            map: SeededFastMap::default(),
            values: Vec::new(),
        };
        let bottom = d.intern(Value::Bottom);
        debug_assert_eq!(bottom, ValueId::BOTTOM);
        d
    }

    /// The id for `v`, allocating one if `v` is new.
    #[inline]
    pub fn intern(&mut self, v: Value) -> ValueId {
        if let Some(&id) = self.map.get(&v) {
            return id;
        }
        let id = ValueId(u32::try_from(self.values.len()).expect("dictionary overflow"));
        self.values.push(v);
        self.map.insert(v, id);
        id
    }

    /// The id for `v` if it has been interned, without allocating. The
    /// constant-time membership tests use this: a value the dictionary has
    /// never seen cannot occur in any interned relation.
    #[inline]
    pub fn lookup(&self, v: Value) -> Option<ValueId> {
        self.map.get(&v).copied()
    }

    /// Decodes an id back to its value.
    #[inline]
    pub fn value(&self, id: ValueId) -> Value {
        self.values[id.index()]
    }

    /// Number of distinct interned values (including `⊥`).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether only `⊥` is interned.
    pub fn is_empty(&self) -> bool {
        self.values.len() <= 1
    }
}

impl Default for Dictionary {
    fn default() -> Dictionary {
        Dictionary::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bottom_is_id_zero() {
        let d = Dictionary::new();
        assert_eq!(d.lookup(Value::Bottom), Some(ValueId::BOTTOM));
        assert_eq!(d.value(ValueId::BOTTOM), Value::Bottom);
    }

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.intern(Value::Int(7));
        let b = d.intern(Value::Int(7));
        assert_eq!(a, b);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn distinct_values_get_distinct_ids() {
        let mut d = Dictionary::new();
        let ids = [
            d.intern(Value::Int(1)),
            d.intern(Value::tagged(0, 1)),
            d.intern(Value::tagged(1, 1)),
            d.intern(Value::Bottom),
        ];
        assert_eq!(ids[3], ValueId::BOTTOM);
        let set: std::collections::HashSet<_> = ids.iter().collect();
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn roundtrip() {
        let mut d = Dictionary::new();
        for v in [Value::Int(-3), Value::tagged(9, 4), Value::Bottom] {
            let id = d.intern(v);
            assert_eq!(d.value(id), v);
        }
    }

    #[test]
    fn lookup_does_not_allocate_ids() {
        let d = Dictionary::new();
        assert_eq!(d.lookup(Value::Int(5)), None);
        assert!(d.is_empty());
    }
}
