//! The workspace hash function for id-level keys.
//!
//! Every hot map and set in the execution layer — the [`Dictionary`]
//! interner, [`HashIndex`] key maps, [`IdSet`] membership sets, answer
//! dedup — is keyed by short data: a [`ValueId`], a `[ValueId]` separator
//! projection, or a compact [`Value`]. The standard library's default
//! SipHash-1-3 is designed to resist hash-flooding from untrusted keys,
//! which costs ~2x-4x per lookup on 4-16 byte keys. The id-level maps
//! never hash attacker-controlled data (ids are dense dictionary indexes
//! the session itself assigned), so they drop that resistance outright
//! ([`FastMap`]/[`FastSet`]). Maps keyed by **raw values** — the
//! dictionary interner and the worker-local interning maps — do see
//! untrusted input; they use [`SeededFastMap`], the same hash mixed with
//! a per-process random seed, so collision sets cannot be precomputed
//! offline.
//!
//! [`FxHasher`] is the multiply-rotate scheme popularized by the rustc
//! `FxHashMap`: `state = (state.rotl(5) ^ word) * K` per 8-byte word. Two
//! properties matter here:
//!
//! * the final multiply spreads entropy into the high bits (hashbrown's
//!   7-bit control tags), while the low bits of `id * K` (K odd) remain a
//!   bijection of the low bits of `id` — dense dictionary ids therefore
//!   spread perfectly across buckets;
//! * it is deterministic (no per-map random state), which keeps index
//!   builds and parallel shard merges reproducible across runs and across
//!   worker threads.
//!
//! [`FastMap`]/[`FastSet`] are the drop-in aliases used everywhere on the
//! id layer.
//!
//! [`Dictionary`]: crate::Dictionary
//! [`HashIndex`]: crate::HashIndex
//! [`IdSet`]: crate::IdSet
//! [`Value`]: crate::Value
//! [`ValueId`]: crate::ValueId

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasher, BuildHasherDefault, Hash, Hasher};
use std::sync::OnceLock;

/// Multiplier: a 64-bit odd constant with well-mixed bits (the fractional
/// part of the golden ratio, as used by Fibonacci hashing).
const K: u64 = 0x9e37_79b9_7f4a_7c15;

/// A fast, deterministic hasher for short id-level keys. See the module
/// docs for why this is safe to use on the execution layer.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Fold the tail length in so "ab" | "c" != "a" | "bc".
            self.add(u64::from_le_bytes(tail) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add(n as u64);
        self.add((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn write_i8(&mut self, n: i8) {
        self.add(n as u8 as u64);
    }

    #[inline]
    fn write_i64(&mut self, n: i64) {
        self.add(n as u64);
    }

    #[inline]
    fn write_isize(&mut self, n: isize) {
        self.add(n as u64);
    }
}

/// The deterministic `BuildHasher` for [`FastMap`]/[`FastSet`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`] — the default map of the execution
/// layer.
pub type FastMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`] — the default set of the execution
/// layer.
pub type FastSet<T> = HashSet<T, FxBuildHasher>;

/// A [`FastMap`] preallocated for `cap` entries.
#[inline]
pub fn fast_map_with_capacity<Key, V>(cap: usize) -> FastMap<Key, V> {
    FastMap::with_capacity_and_hasher(cap, FxBuildHasher::default())
}

/// A [`FastSet`] preallocated for `cap` entries.
#[inline]
pub fn fast_set_with_capacity<T>(cap: usize) -> FastSet<T> {
    FastSet::with_capacity_and_hasher(cap, FxBuildHasher::default())
}

/// The standalone hash of one value under [`FxHasher`] — used to assign
/// rows to shards in parallel index builds, where the shard split must
/// agree with the map's own hashing.
#[inline]
pub fn fx_hash_of<T: Hash + ?Sized>(t: &T) -> u64 {
    let mut h = FxHasher::default();
    t.hash(&mut h);
    h.finish()
}

/// The per-process random seed for maps that hash untrusted input.
fn process_seed() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    *SEED.get_or_init(|| {
        // One SipHash keying is plenty of entropy, paid once per process.
        std::collections::hash_map::RandomState::new()
            .build_hasher()
            .finish()
    })
}

/// The `BuildHasher` for maps keyed by **raw, untrusted** data (decoded
/// [`Value`](crate::Value)s at the ingestion boundary): [`FxHasher`] speed,
/// but the initial state carries a per-process random seed so an adversary
/// cannot precompute colliding key sets against the published constant.
#[derive(Clone, Copy, Debug, Default)]
pub struct SeededFxBuildHasher;

impl BuildHasher for SeededFxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher {
            state: process_seed(),
        }
    }
}

/// A `HashMap` for raw-value keys: Fx speed with a per-process seed.
pub type SeededFastMap<K, V> = HashMap<K, V, SeededFxBuildHasher>;

/// A [`SeededFastMap`] preallocated for `cap` entries.
#[inline]
pub fn seeded_map_with_capacity<Key, V>(cap: usize) -> SeededFastMap<Key, V> {
    SeededFastMap::with_capacity_and_hasher(cap, SeededFxBuildHasher)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dictionary::ValueId;

    #[test]
    fn deterministic_across_hasher_instances() {
        let key: &[ValueId] = &[ValueId(3), ValueId(9)];
        assert_eq!(fx_hash_of(key), fx_hash_of(key));
    }

    #[test]
    fn slice_hash_agrees_with_inline_key() {
        use crate::key::InlineKey;
        for n in 0..7u32 {
            let ids: Vec<ValueId> = (0..n).map(ValueId).collect();
            let k = InlineKey::from_slice(&ids);
            assert_eq!(fx_hash_of(&k), fx_hash_of(ids.as_slice()));
        }
    }

    #[test]
    fn borrowed_probe_roundtrip() {
        use crate::key::InlineKey;
        let mut map: FastMap<InlineKey, u32> = FastMap::default();
        let ids = [ValueId(1), ValueId(2)];
        map.insert(InlineKey::from_slice(&ids), 7);
        assert_eq!(map.get(&ids[..]), Some(&7));
        assert_eq!(map.get(&[ValueId(9)][..]), None);
    }

    #[test]
    fn dense_ids_spread_over_low_bits() {
        // Low bits of `id * K` must stay distinct for dense ids (K is odd,
        // so multiplication is a bijection mod 2^k) — this is what keeps
        // dictionary-dense keys from clustering in hashbrown buckets.
        let mask = (1u64 << 12) - 1;
        let mut seen = FastSet::default();
        for id in 0..1u32 << 12 {
            seen.insert(fx_hash_of(&ValueId(id)) & mask);
        }
        assert!(seen.len() > (1 << 12) / 2, "low bits must not collapse");
    }

    #[test]
    fn seeded_hasher_differs_from_unseeded_but_is_stable_in_process() {
        use crate::value::Value;
        let seeded = SeededFxBuildHasher;
        let h1 = seeded.hash_one(Value::Int(42));
        let h2 = seeded.hash_one(Value::Int(42));
        assert_eq!(h1, h2, "stable within a process");
        let mut map: SeededFastMap<Value, u32> = seeded_map_with_capacity(4);
        map.insert(Value::Int(42), 1);
        assert_eq!(map.get(&Value::Int(42)), Some(&1));
    }

    #[test]
    fn unaligned_tails_do_not_collide_with_shifted_splits() {
        let mut h1 = FxHasher::default();
        h1.write(b"ab");
        h1.write(b"c");
        let mut h2 = FxHasher::default();
        h2.write(b"a");
        h2.write(b"bc");
        assert_ne!(h1.finish(), h2.finish());
    }
}
