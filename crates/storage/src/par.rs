//! Worker policy for parallel preprocessing.
//!
//! Preprocessing (interning, index builds) parallelizes by sharding rows
//! across `std::thread::scope` workers — plain scoped threads, because the
//! offline `crates/compat/` constraint rules out external thread pools.
//! Spawning threads has a fixed cost (~tens of µs each), so the policy is:
//!
//! * relations below [`PAR_ROW_THRESHOLD`] rows always build
//!   single-threaded — the sequential path is the common case and stays
//!   allocation-lean;
//! * above the threshold, up to [`max_workers`] threads are used, bounded
//!   by `std::thread::available_parallelism` (so a single-core container
//!   transparently falls back to the sequential path);
//! * the `UCQ_PAR_THREADS` environment variable overrides the bound — set
//!   it to `1` to force sequential builds, or to a larger value to exercise
//!   the sharded code paths on machines where `available_parallelism` is 1
//!   (this is how the test suite covers the parallel builders everywhere).

use std::sync::OnceLock;

/// Rows below this build single-threaded: sharding + spawn overhead only
/// amortizes on relations where a full scan is itself significant.
pub const PAR_ROW_THRESHOLD: usize = 1 << 14;

/// Hard cap on preprocessing workers; beyond this the shard-merge phase
/// starts to dominate on the relation sizes this workspace targets.
const MAX_WORKERS_CAP: usize = 8;

fn max_workers() -> usize {
    static MAX: OnceLock<usize> = OnceLock::new();
    *MAX.get_or_init(|| {
        if let Ok(s) = std::env::var("UCQ_PAR_THREADS") {
            if let Ok(n) = s.trim().parse::<usize>() {
                return n.clamp(1, 64);
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(MAX_WORKERS_CAP)
    })
}

/// The number of workers a build over `rows` rows should use. Returns `1`
/// (sequential) below [`PAR_ROW_THRESHOLD`] or when the machine has no
/// spare parallelism.
#[inline]
pub fn workers_for(rows: usize) -> usize {
    if rows < PAR_ROW_THRESHOLD {
        return 1;
    }
    let w = max_workers();
    // Keep every worker busy with at least a threshold's worth of rows.
    w.min(rows / (PAR_ROW_THRESHOLD / 2)).max(1)
}

/// Splits `n` items into `workers` contiguous ranges of near-equal size.
pub fn row_ranges(n: usize, workers: usize) -> Vec<std::ops::Range<usize>> {
    let workers = workers.max(1);
    let chunk = n.div_ceil(workers).max(1);
    (0..workers)
        .map(|w| (w * chunk).min(n)..((w + 1) * chunk).min(n))
        .filter(|r| !r.is_empty())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_relations_are_sequential() {
        assert_eq!(workers_for(0), 1);
        assert_eq!(workers_for(PAR_ROW_THRESHOLD - 1), 1);
    }

    #[test]
    fn ranges_cover_exactly() {
        for n in [0usize, 1, 7, 100, 1001] {
            for w in 1..6 {
                let rs = row_ranges(n, w);
                let mut covered = 0;
                let mut next = 0;
                for r in &rs {
                    assert_eq!(r.start, next, "contiguous");
                    covered += r.len();
                    next = r.end;
                }
                assert_eq!(covered, n);
            }
        }
    }
}
