//! A small text format for instances.
//!
//! One fact per statement, `.`-terminated (newlines also separate):
//!
//! ```text
//! R(1, 2). R(2, 3).
//! S(2, 5).
//! # comments run to end of line
//! ```
//!
//! Values are integers or `_` for `⊥`. Tagged values print as `v#t` and
//! parse back. Useful for fixtures, examples, and the docs.

use crate::instance::Instance;
use crate::relation::Relation;
use crate::value::Value;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Parse errors for the instance text format.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TextError {
    /// Byte offset of the error.
    pub at: usize,
    /// Explanation.
    pub msg: String,
}

impl std::fmt::Display for TextError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "instance parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for TextError {}

/// Parses an instance from the text format.
pub fn parse_instance(input: &str) -> Result<Instance, TextError> {
    let b = input.as_bytes();
    let mut pos = 0usize;
    let mut facts: HashMap<String, Vec<Vec<Value>>> = HashMap::new();

    let err = |at: usize, msg: &str| TextError {
        at,
        msg: msg.to_string(),
    };
    let skip_ws = |pos: &mut usize| {
        while *pos < b.len() {
            match b[*pos] {
                c if c.is_ascii_whitespace() => *pos += 1,
                b'.' | b';' => *pos += 1,
                b'#' | b'%' => {
                    while *pos < b.len() && b[*pos] != b'\n' {
                        *pos += 1;
                    }
                }
                _ => break,
            }
        }
    };

    loop {
        skip_ws(&mut pos);
        if pos >= b.len() {
            break;
        }
        // Relation name.
        let start = pos;
        while pos < b.len() && (b[pos].is_ascii_alphanumeric() || b[pos] == b'_') {
            pos += 1;
        }
        if pos == start {
            return Err(err(pos, "expected relation name"));
        }
        let name = std::str::from_utf8(&b[start..pos])
            .expect("ascii")
            .to_string();
        skip_ws(&mut pos);
        if pos >= b.len() || b[pos] != b'(' {
            return Err(err(pos, "expected '('"));
        }
        pos += 1;
        // Values.
        let mut row: Vec<Value> = Vec::new();
        loop {
            skip_ws(&mut pos);
            if pos < b.len() && b[pos] == b')' && row.is_empty() {
                return Err(err(pos, "facts need at least one value"));
            }
            let (v, next) = parse_value(b, pos).map_err(|(at, m)| err(at, &m))?;
            row.push(v);
            pos = next;
            skip_ws(&mut pos);
            match b.get(pos) {
                Some(b',') => pos += 1,
                Some(b')') => {
                    pos += 1;
                    break;
                }
                _ => return Err(err(pos, "expected ',' or ')'")),
            }
        }
        let rows = facts.entry(name.clone()).or_default();
        if let Some(first) = rows.first() {
            if first.len() != row.len() {
                return Err(err(
                    pos,
                    &format!(
                        "arity mismatch for {name}: got {} then {}",
                        first.len(),
                        row.len()
                    ),
                ));
            }
        }
        rows.push(row);
    }

    let mut inst = Instance::new();
    for (name, rows) in facts {
        let arity = rows[0].len();
        let mut rel = Relation::with_capacity(arity, rows.len());
        for row in &rows {
            rel.push_row(row);
        }
        inst.insert(name, rel);
    }
    Ok(inst)
}

fn parse_value(b: &[u8], mut pos: usize) -> Result<(Value, usize), (usize, String)> {
    if pos >= b.len() {
        return Err((pos, "expected value".into()));
    }
    if b[pos] == b'_' {
        return Ok((Value::Bottom, pos + 1));
    }
    let start = pos;
    if b[pos] == b'-' {
        pos += 1;
    }
    while pos < b.len() && b[pos].is_ascii_digit() {
        pos += 1;
    }
    if pos == start || (pos == start + 1 && b[start] == b'-') {
        return Err((start, "expected integer, '_' or 'v#tag'".into()));
    }
    let val: i64 = std::str::from_utf8(&b[start..pos])
        .expect("ascii")
        .parse()
        .map_err(|e| (start, format!("bad integer: {e}")))?;
    // Optional tag suffix.
    if pos < b.len() && b[pos] == b'#' {
        pos += 1;
        let tstart = pos;
        while pos < b.len() && b[pos].is_ascii_digit() {
            pos += 1;
        }
        if pos == tstart {
            return Err((pos, "expected tag after '#'".into()));
        }
        let tag: u32 = std::str::from_utf8(&b[tstart..pos])
            .expect("ascii")
            .parse()
            .map_err(|e| (tstart, format!("bad tag: {e}")))?;
        return Ok((Value::tagged(tag, val), pos));
    }
    Ok((Value::Int(val), pos))
}

/// Serializes an instance into the text format (relations sorted by name,
/// rows in storage order). `parse_instance ∘ to_text` is the identity up to
/// row order.
pub fn to_text(inst: &Instance) -> String {
    let mut names: Vec<&str> = inst.names().collect();
    names.sort_unstable();
    let mut out = String::new();
    for name in names {
        let rel = inst.get(name).expect("listed");
        for row in rel.iter_rows() {
            let _ = write!(out, "{name}(");
            for (i, v) in row.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                match v {
                    Value::Bottom => out.push('_'),
                    Value::Int(x) => {
                        let _ = write!(out, "{x}");
                    }
                    Value::Tagged { tag, val } => {
                        let _ = write!(out, "{val}#{tag}");
                    }
                }
            }
            out.push_str(").\n");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_facts() {
        let i = parse_instance("R(1, 2). R(2, 3).\nS(5).").unwrap();
        assert_eq!(i.get("R").unwrap().len(), 2);
        assert_eq!(i.get("S").unwrap().arity(), 1);
    }

    #[test]
    fn parse_bottom_negative_and_tagged() {
        let i = parse_instance("T(_, -7, 3#2).").unwrap();
        let row = i.get("T").unwrap().row(0).to_vec();
        assert_eq!(
            row,
            vec![Value::Bottom, Value::Int(-7), Value::tagged(2, 3)]
        );
    }

    #[test]
    fn comments_and_blank_lines() {
        let i = parse_instance("# header\nR(1, 2).\n% trailing\n\nR(3, 4).").unwrap();
        assert_eq!(i.get("R").unwrap().len(), 2);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let e = parse_instance("R(1, 2). R(3).").unwrap_err();
        assert!(e.msg.contains("arity mismatch"));
    }

    #[test]
    fn garbage_rejected() {
        assert!(parse_instance("R(1,").is_err());
        assert!(parse_instance("(1)").is_err());
        assert!(parse_instance("R()").is_err());
        assert!(parse_instance("R(x)").is_err());
        assert!(parse_instance("R(1#)").is_err());
    }

    #[test]
    fn roundtrip() {
        let text = "A(1, 2).\nA(3, _).\nB(9#1).\n";
        let i = parse_instance(text).unwrap();
        let printed = to_text(&i);
        let j = parse_instance(&printed).unwrap();
        assert_eq!(to_text(&j), printed);
        assert_eq!(i.get("A").unwrap().len(), j.get("A").unwrap().len());
    }

    #[test]
    fn empty_input_is_empty_instance() {
        let i = parse_instance("  \n# nothing\n").unwrap();
        assert_eq!(i.n_relations(), 0);
    }
}
