//! Synchronization seam for the freeze/serve concurrency protocol.
//!
//! Every synchronization primitive the serving path relies on —
//! [`FrozenContext`](crate::FrozenContext)'s overflow mutex and
//! `has_overflow` flag, [`EvalContext`](crate::EvalContext)'s interner
//! lock, `CdyEngine`'s lazily built row-sets, the plan-cache slots — is
//! imported from here rather than from `std::sync` directly. In a normal
//! build these re-exports *are* the `std::sync` types, with zero
//! indirection. Under `RUSTFLAGS="--cfg ucq_model_check"` they swap to the
//! shuttle-compat wrappers (see `crates/compat/shuttle`), so the
//! `tests/model_check.rs` suites run the *actual production protocol code*
//! under exhaustive bounded-preemption schedule exploration instead of a
//! re-implementation that could drift.
//!
//! [`lock_unpoisoned`] is the one sanctioned way to acquire a mutex in the
//! patrolled layers (lint L5): lock poisoning only means another thread
//! panicked mid-critical-section, and for the interner/overlay structures
//! every critical section leaves the data structurally valid (appends are
//! completed before publication), so recovery is always sound — but it is
//! worth a diagnostic, not a silent shrug.

#[cfg(not(ucq_model_check))]
pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
#[cfg(not(ucq_model_check))]
pub use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};

#[cfg(ucq_model_check)]
pub use shuttle::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
#[cfg(ucq_model_check)]
pub use shuttle::sync::{Condvar, Mutex, MutexGuard, OnceLock};

/// Acquires `mutex`, recovering from poisoning with a diagnostic instead
/// of panicking (or silently swallowing it with a bare
/// `unwrap_or_else(PoisonError::into_inner)`).
///
/// `what` names the lock for the one-line stderr note emitted on the cold
/// poison path; the hot path is a single `match` on the `LockResult`.
pub fn lock_unpoisoned<'a, T: ?Sized>(mutex: &'a Mutex<T>, what: &str) -> MutexGuard<'a, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => {
            eprintln!(
                "ucq-storage: recovering {what} from a poisoned lock \
                 (a previous holder panicked; the protected state is append-consistent)"
            );
            poisoned.into_inner()
        }
    }
}

/// The [`Condvar::wait`] counterpart of [`lock_unpoisoned`]: parks on
/// `condvar` (releasing `guard`'s lock) and re-acquires it on wakeup,
/// recovering from poisoning with the same diagnostic discipline.
pub fn wait_unpoisoned<'a, T>(
    condvar: &Condvar,
    guard: MutexGuard<'a, T>,
    what: &str,
) -> MutexGuard<'a, T> {
    match condvar.wait(guard) {
        Ok(guard) => guard,
        Err(poisoned) => {
            eprintln!(
                "ucq-storage: recovering {what} from a poisoned lock after a \
                 condvar wait (a previous holder panicked; the protected state \
                 is append-consistent)"
            );
            poisoned.into_inner()
        }
    }
}
