//! An arc-swap-style epoch cell for zero-downtime snapshot rotation.
//!
//! [`EpochCell`] holds the *current* epoch of some shared immutable state
//! (in practice a frozen session/context snapshot) behind the workspace
//! [`sync`](crate::sync) seam: readers take the mutex only long enough to
//! clone an `Arc` — nanoseconds, never blocking on snapshot construction —
//! and then work lock-free on their pinned epoch for as long as they like.
//! [`EpochCell::install`] publishes the next epoch the same way; in-flight
//! readers keep the `Arc` they already cloned, so epoch N and epoch N+1
//! serve concurrently with no torn state and no stop-the-world window.
//! This is the rotation point `ucq-serve` workers poll between requests:
//! the epoch counter lets a worker (or a test) detect that a rotation
//! happened without comparing `Arc` pointers.
//!
//! The cell deliberately uses the seam's `Mutex` rather than an atomic
//! pointer swap: the critical section is two pointer copies, the seam
//! keeps it model-checkable under shuttle, and the workspace stays free of
//! `unsafe` and external lock-free crates.

use crate::sync::{lock_unpoisoned, Mutex};
use std::fmt;
use std::sync::Arc;

/// A mutex-guarded `(epoch, Arc<T>)` slot with clone-on-read semantics.
/// See the module docs.
pub struct EpochCell<T> {
    slot: Mutex<(u64, Arc<T>)>,
}

impl<T> EpochCell<T> {
    /// A cell at epoch 0 holding `value`.
    pub fn new(value: T) -> EpochCell<T> {
        EpochCell::from_arc(Arc::new(value))
    }

    /// A cell at epoch 0 holding an already-shared `value`.
    pub fn from_arc(value: Arc<T>) -> EpochCell<T> {
        EpochCell {
            slot: Mutex::new((0, value)),
        }
    }

    /// The current epoch's value. The lock is held for one `Arc` clone;
    /// the returned handle stays valid (pinned to its epoch) across any
    /// number of subsequent [`EpochCell::install`]s.
    pub fn load(&self) -> Arc<T> {
        Arc::clone(&lock_unpoisoned(&self.slot, "the epoch cell").1)
    }

    /// As [`EpochCell::load`], also returning the epoch number the value
    /// was published under.
    pub fn load_tagged(&self) -> (u64, Arc<T>) {
        let slot = lock_unpoisoned(&self.slot, "the epoch cell");
        (slot.0, Arc::clone(&slot.1))
    }

    /// The current epoch number (0 until the first install).
    pub fn epoch(&self) -> u64 {
        lock_unpoisoned(&self.slot, "the epoch cell").0
    }

    /// Publishes `value` as the next epoch and returns its epoch number.
    /// Readers that loaded earlier keep their pinned snapshot untouched.
    pub fn install(&self, value: Arc<T>) -> u64 {
        let mut slot = lock_unpoisoned(&self.slot, "the epoch cell");
        slot.0 += 1;
        slot.1 = value;
        slot.0
    }
}

impl<T> fmt::Debug for EpochCell<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "EpochCell(epoch={})", self.epoch())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_bumps_epoch_and_readers_keep_their_pin() {
        let cell = EpochCell::new(1usize);
        assert_eq!(cell.epoch(), 0);
        let pinned = cell.load();
        let e1 = cell.install(Arc::new(2usize));
        assert_eq!(e1, 1);
        assert_eq!(*pinned, 1, "in-flight readers stay on their epoch");
        assert_eq!(*cell.load(), 2, "new readers see the new epoch");
        let (e, v) = cell.load_tagged();
        assert_eq!((e, *v), (1, 2));
    }

    #[test]
    fn concurrent_loads_see_some_installed_epoch() {
        let cell = Arc::new(EpochCell::new(0u64));
        std::thread::scope(|scope| {
            let writer = Arc::clone(&cell);
            scope.spawn(move || {
                for i in 1..=50 {
                    writer.install(Arc::new(i));
                }
            });
            for _ in 0..4 {
                let reader = Arc::clone(&cell);
                scope.spawn(move || {
                    let mut last = 0u64;
                    for _ in 0..200 {
                        let (e, v) = reader.load_tagged();
                        assert_eq!(e, *v, "epoch and payload move together");
                        assert!(*v >= last, "epochs are monotone");
                        last = *v;
                    }
                });
            }
        });
        assert_eq!(cell.epoch(), 50);
    }
}
