//! Immutable serve-phase context snapshots and the two-phase view.
//!
//! [`FrozenContext`] is the read side of the context lifecycle described in
//! [`crate::context`]: a point-in-time snapshot of a build-phase
//! [`EvalContext`] — dictionary, interned-relation cache, derived-relation
//! cache and index cache — with **no lock on any hot-path read**. Decode,
//! probe and dedup all run against plain immutable tables, so one frozen
//! snapshot can serve any number of enumeration threads at once.
//!
//! A query evaluated *after* the freeze can still miss these caches (a
//! relation never touched during preprocessing, an index keyed on new
//! columns, a constant the session has never seen). Those misses fall back
//! to a mutex-guarded **overflow** overlay: new values get ids at and above
//! the frozen watermark (`base_len`), and newly built relations/indexes
//! land in overlay maps. The frozen snapshot itself is never mutated, so
//! concurrent readers on the fast path are unaffected — they only pay the
//! overflow lock for ids or cache keys the snapshot does not cover.
//!
//! [`CtxView`] unifies the two phases behind the full `EvalContext` API so
//! every pipeline in the workspace (`core::{engine, pipeline, algorithm1,
//! lemma8, naive_ucq}`, `enumerate::{cheater, idenum}`, `yannakakis::{cdy,
//! naive, noderel}`) runs unchanged against either a build-phase context or
//! a frozen snapshot.

use crate::context::{
    ContextStats, EvalContext, IndexEntry, IndexKey, IngestStats, PlanKey, PlanSlot, RelChurn,
    StatsEntry,
};
use crate::dictionary::{Dictionary, ValueId};
use crate::hash::FastMap;
use crate::idrel::IdRel;
use crate::index::HashIndex;
use crate::key::InlineKey;
use crate::relation::Relation;
use crate::stats::RelStats;
use crate::sync::{
    lock_unpoisoned, AtomicBool, AtomicU64, AtomicUsize, Mutex, MutexGuard, Ordering,
};
use crate::tuple::Tuple;
use crate::value::Value;
use std::any::Any;
use std::sync::Arc;

/// Post-freeze fallback state: an overlay dictionary (ids `>= base_len`)
/// plus overlay caches for relations/indexes first requested after the
/// freeze. Guarded by one mutex; only touched on snapshot misses.
#[derive(Debug, Default)]
struct Overflow {
    /// Values unknown to the frozen dictionary, in id order; the id of
    /// `values[i]` is `base_len + i`.
    values: Vec<Value>,
    map: FastMap<Value, ValueId>,
    interned: FastMap<usize, (Arc<Relation>, Arc<IdRel>)>,
    derived: FastMap<(usize, Box<[u32]>), Arc<IdRel>>,
    indexes: FastMap<IndexKey, IndexEntry>,
    rel_stats: FastMap<usize, StatsEntry>,
    plans: FastMap<PlanKey, PlanSlot>,
}

/// An immutable, `Send + Sync` snapshot of an [`EvalContext`]. See the
/// module docs; constructed via [`EvalContext::freeze`].
#[derive(Debug)]
pub struct FrozenContext {
    /// Shared with the build context's snapshot cache: consecutive epochs
    /// that interned no new values alias one dictionary table.
    dict: Arc<Dictionary>,
    /// Frozen dictionary size: ids below this decode without locking.
    base_len: usize,
    interned: FastMap<usize, (Arc<Relation>, Arc<IdRel>)>,
    derived: FastMap<(usize, Box<[u32]>), Arc<IdRel>>,
    indexes: FastMap<IndexKey, IndexEntry>,
    rel_stats: FastMap<usize, StatsEntry>,
    plans: FastMap<PlanKey, PlanSlot>,
    /// The stats epoch at freeze time; post-freeze overlay interns add
    /// `epoch_bumps` on top.
    base_epoch: u64,
    epoch_bumps: AtomicU64,
    /// Counters carried over from the build phase at freeze time.
    base_stats: ContextStats,
    overflow: Mutex<Overflow>,
    /// Set once the overlay dictionary is non-empty, letting negative
    /// lookups on purely-frozen sessions skip the overflow lock.
    has_overflow: AtomicBool,
    interned_hits: AtomicUsize,
    interned_builds: AtomicUsize,
    derived_hits: AtomicUsize,
    derived_builds: AtomicUsize,
    index_hits: AtomicUsize,
    index_builds: AtomicUsize,
}

impl FrozenContext {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        dict: Arc<Dictionary>,
        interned: FastMap<usize, (Arc<Relation>, Arc<IdRel>)>,
        derived: FastMap<(usize, Box<[u32]>), Arc<IdRel>>,
        indexes: FastMap<IndexKey, IndexEntry>,
        rel_stats: FastMap<usize, StatsEntry>,
        plans: FastMap<PlanKey, PlanSlot>,
        base_epoch: u64,
        base_stats: ContextStats,
    ) -> FrozenContext {
        FrozenContext {
            base_len: dict.len(),
            dict,
            interned,
            derived,
            indexes,
            rel_stats,
            plans,
            base_epoch,
            epoch_bumps: AtomicU64::new(0),
            base_stats,
            overflow: Mutex::new(Overflow::default()),
            has_overflow: AtomicBool::new(false),
            interned_hits: AtomicUsize::new(0),
            interned_builds: AtomicUsize::new(0),
            derived_hits: AtomicUsize::new(0),
            derived_builds: AtomicUsize::new(0),
            index_hits: AtomicUsize::new(0),
            index_builds: AtomicUsize::new(0),
        }
    }

    #[inline]
    fn overflow(&self) -> MutexGuard<'_, Overflow> {
        // Overflow mutations are append-only inserts; recover from a
        // poisoned lock rather than failing the whole serve phase.
        lock_unpoisoned(&self.overflow, "the FrozenContext overflow overlay")
    }

    /// Interns `v` into the overlay (or returns its existing overlay id).
    /// Never touches the frozen snapshot.
    fn intern_with(&self, ov: &mut Overflow, v: Value) -> ValueId {
        if let Some(id) = self.dict.lookup(v) {
            return id;
        }
        if let Some(&id) = ov.map.get(&v) {
            return id;
        }
        let id = ValueId((self.base_len + ov.values.len()) as u32);
        ov.values.push(v);
        ov.map.insert(v, id);
        self.has_overflow.store(true, Ordering::Release);
        id
    }

    #[inline]
    fn value_with(&self, ov: &Overflow, id: ValueId) -> Value {
        let i = id.index();
        if i < self.base_len {
            self.dict.value(id)
        } else {
            ov.values[i - self.base_len]
        }
    }

    #[cold]
    fn decode_overflow(&self, id: ValueId) -> Value {
        self.overflow().values[id.index() - self.base_len]
    }

    /// Lock-free for frozen ids (the hot path); overlay ids take the
    /// overflow lock.
    #[inline]
    fn decode_fast(&self, id: ValueId) -> Value {
        if id.index() < self.base_len {
            self.dict.value(id)
        } else {
            self.decode_overflow(id)
        }
    }

    /// Interns one value (overlay on frozen-dictionary miss).
    ///
    /// The `faults::force_overlay_miss` chaos hook (inert outside
    /// `--cfg ucq_fault_inject`) skips the lock-free fast path so the
    /// request takes the overlay lock; `intern_with` re-checks the frozen
    /// dictionary under the lock, so the result is identical.
    #[inline]
    pub fn intern(&self, v: Value) -> ValueId {
        if crate::faults::force_overlay_miss() {
            let mut ov = self.overflow();
            return self.intern_with(&mut ov, v);
        }
        match self.dict.lookup(v) {
            Some(id) => id,
            None => {
                let mut ov = self.overflow();
                self.intern_with(&mut ov, v)
            }
        }
    }

    /// The id of `v` if the frozen session (or its overlay) has seen it.
    #[inline]
    pub fn lookup(&self, v: Value) -> Option<ValueId> {
        if crate::faults::force_overlay_miss() {
            // Chaos path: resolve through the overlay lock; frozen ids
            // are still found (the lock-held re-check hits the frozen
            // dictionary first).
            let ov = self.overflow();
            if let Some(id) = self.dict.lookup(v) {
                return Some(id);
            }
            return ov.map.get(&v).copied();
        }
        if let Some(id) = self.dict.lookup(v) {
            return Some(id);
        }
        if !self.has_overflow.load(Ordering::Acquire) {
            return None;
        }
        self.overflow().map.get(&v).copied()
    }

    /// Decodes one id (no lock for frozen ids).
    #[inline]
    pub fn decode(&self, id: ValueId) -> Value {
        self.decode_fast(id)
    }

    /// Decodes a sequence of ids into an answer [`Tuple`] — the per-answer
    /// emission path, lock-free for frozen ids. Chaos hook: one
    /// `faults::on_decode` visit per emitted answer.
    #[inline]
    pub fn decode_tuple<I: IntoIterator<Item = ValueId>>(&self, ids: I) -> Tuple {
        crate::faults::on_decode();
        Tuple(ids.into_iter().map(|id| self.decode_fast(id)).collect())
    }

    /// Decodes a flat run of id rows (`width` ids per row), lock-free for
    /// frozen ids. Chaos hook: one `faults::on_decode` visit per block.
    pub fn decode_rows(&self, width: usize, ids: &[ValueId]) -> Vec<Tuple> {
        crate::faults::on_decode();
        if width == 0 {
            return vec![Tuple::empty(); ids.len()];
        }
        debug_assert_eq!(ids.len() % width, 0, "partial row in flat table");
        ids.chunks_exact(width)
            .map(|row| Tuple(row.iter().map(|&id| self.decode_fast(id)).collect()))
            .collect()
    }

    /// Decodes an interned relation back to a row-major [`Relation`].
    pub fn decode_rel(&self, rel: &IdRel) -> Relation {
        if !self.has_overflow.load(Ordering::Acquire) {
            return rel.decode(&self.dict);
        }
        let ov = self.overflow();
        let mut out = Relation::new(rel.arity());
        let mut ids = Vec::with_capacity(rel.arity());
        let mut vals = Vec::with_capacity(rel.arity());
        for r in 0..rel.len() {
            ids.clear();
            rel.gather_row(r, &mut ids);
            vals.clear();
            vals.extend(ids.iter().map(|&id| self.value_with(&ov, id)));
            out.push_row(&vals);
        }
        out
    }

    /// Looks up every value of `row` into `out` (cleared first) without
    /// interning; `false` if any value is unknown. Lock-free unless the
    /// overlay is non-empty *and* a value misses the frozen dictionary.
    pub fn lookup_row(&self, row: &[Value], out: &mut Vec<ValueId>) -> bool {
        out.clear();
        for &v in row {
            match self.lookup(v) {
                Some(id) => out.push(id),
                None => return false,
            }
        }
        true
    }

    /// Interns a decoded row into an [`InlineKey`] (answer-side dedup).
    pub fn intern_key(&self, row: &[Value]) -> InlineKey {
        let mut buf = [ValueId::BOTTOM; InlineKey::INLINE];
        if row.len() <= InlineKey::INLINE {
            for (slot, &v) in buf.iter_mut().zip(row) {
                *slot = self.intern(v);
            }
            InlineKey::Inline {
                len: row.len() as u8,
                ids: buf,
            }
        } else {
            InlineKey::Spilled(row.iter().map(|&v| self.intern(v)).collect())
        }
    }

    /// Interns a whole relation through the overlay, holding the lock for
    /// the duration (cold path: only relations never seen before freeze).
    fn intern_rel_overflow(&self, rel: &Relation) -> IdRel {
        let mut ov = self.overflow();
        let mut out = IdRel::with_capacity(rel.arity(), rel.len());
        let mut buf = Vec::with_capacity(rel.arity());
        for row in rel.iter_rows() {
            buf.clear();
            buf.extend(row.iter().map(|&v| self.intern_with(&mut ov, v)));
            out.push_row(&buf);
        }
        out
    }

    /// The interned columnar mirror of `rel`: snapshot hit, overlay hit,
    /// or overlay build, in that order.
    pub fn interned_rel(&self, rel: &Arc<Relation>) -> Arc<IdRel> {
        let key = Arc::as_ptr(rel) as usize;
        if let Some((_pin, r)) = self.interned.get(&key) {
            self.interned_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(r);
        }
        if let Some(r) = self
            .overflow()
            .interned
            .get(&key)
            .map(|(_p, r)| Arc::clone(r))
        {
            self.interned_hits.fetch_add(1, Ordering::Relaxed);
            return r;
        }
        self.interned_builds.fetch_add(1, Ordering::Relaxed);
        self.epoch_bumps.fetch_add(1, Ordering::Relaxed);
        let built = Arc::new(self.intern_rel_overflow(rel));
        let mut ov = self.overflow();
        // A racing thread may have inserted meanwhile; first build wins so
        // every caller sees one physical IdRel.
        let entry = ov.interned.entry(key).or_insert((Arc::clone(rel), built));
        Arc::clone(&entry.1)
    }

    /// Registers a pre-interned mirror for `rel` in the overlay (the
    /// frozen snapshot is never mutated). Ids in `id_rel` must already be
    /// consistent with this snapshot (frozen ids or overlay ids).
    pub fn register_interned(&self, rel: &Arc<Relation>, id_rel: Arc<IdRel>) {
        debug_assert_eq!(rel.len(), id_rel.len(), "mirror must match row count");
        let key = Arc::as_ptr(rel) as usize;
        // No epoch bump: registrations are pipeline-produced mirrors of
        // derived data (Lemma 8 materializations), not new base relations —
        // bumping here would invalidate the plan cache on every prepare.
        self.overflow()
            .interned
            .insert(key, (Arc::clone(rel), id_rel));
    }

    /// A relation derived from `rel` by a pure id-level transformation
    /// (see [`EvalContext::derived_rel`]): snapshot hit, overlay hit, or
    /// overlay build.
    pub fn derived_rel(
        &self,
        rel: &Arc<Relation>,
        sig: &[u32],
        build: impl FnOnce(&IdRel) -> IdRel,
    ) -> Arc<IdRel> {
        let key = (Arc::as_ptr(rel) as usize, sig.into());
        if let Some(found) = self.derived.get(&key) {
            self.derived_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(found);
        }
        if let Some(found) = self.overflow().derived.get(&key).cloned() {
            self.derived_hits.fetch_add(1, Ordering::Relaxed);
            return found;
        }
        // Build outside the lock: `interned_rel` takes it internally, and
        // `build` may re-enter the context.
        let base = self.interned_rel(rel);
        let built = Arc::new(build(&base));
        self.derived_builds.fetch_add(1, Ordering::Relaxed);
        let mut ov = self.overflow();
        Arc::clone(ov.derived.entry(key).or_insert(built))
    }

    /// The cached index over `rel` keyed on `key_cols`: snapshot hit,
    /// overlay hit, or overlay build.
    pub fn index(&self, rel: &Arc<IdRel>, key_cols: &[usize]) -> Arc<HashIndex> {
        let key = (Arc::as_ptr(rel) as usize, key_cols.into());
        if let Some((_pin, idx)) = self.indexes.get(&key) {
            self.index_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(idx);
        }
        if let Some(idx) = self
            .overflow()
            .indexes
            .get(&key)
            .map(|(_p, i)| Arc::clone(i))
        {
            self.index_hits.fetch_add(1, Ordering::Relaxed);
            return idx;
        }
        self.index_builds.fetch_add(1, Ordering::Relaxed);
        let idx = Arc::new(HashIndex::build(rel, key_cols));
        let mut ov = self.overflow();
        let entry = ov.indexes.entry(key).or_insert((Arc::clone(rel), idx));
        Arc::clone(&entry.1)
    }

    /// The cached [`RelStats`] of `rel`: snapshot hit, overlay hit, or
    /// overlay compute (harvesting frozen single-column indexes where they
    /// exist).
    pub fn rel_stats(&self, rel: &Arc<IdRel>) -> Arc<RelStats> {
        let key = Arc::as_ptr(rel) as usize;
        if let Some((_pin, s)) = self.rel_stats.get(&key) {
            return Arc::clone(s);
        }
        if let Some(s) = self
            .overflow()
            .rel_stats
            .get(&key)
            .map(|(_p, s)| Arc::clone(s))
        {
            return s;
        }
        // Compute outside the overflow lock; only frozen indexes are
        // harvested (peeking the overlay would deadlock and the cold path
        // does not warrant it).
        let stats = Arc::new(RelStats::compute_with(rel, |c| {
            let ikey: IndexKey = (key, [c].as_slice().into());
            self.indexes
                .get(&ikey)
                .map(|(_p, i)| RelStats::column_from_index(i))
        }));
        let mut ov = self.overflow();
        let entry = ov.rel_stats.entry(key).or_insert((Arc::clone(rel), stats));
        Arc::clone(&entry.1)
    }

    /// The stats epoch: the frozen base plus one bump per post-freeze
    /// overlay intern/registration.
    pub fn stats_epoch(&self) -> u64 {
        self.base_epoch + self.epoch_bumps.load(Ordering::Relaxed)
    }

    /// The cached plan stored under `(fingerprint, epoch)`: snapshot hit or
    /// overlay hit.
    pub fn cached_plan(&self, fingerprint: u64, epoch: u64) -> Option<Arc<dyn Any + Send + Sync>> {
        if let Some(slot) = self.plans.get(&(fingerprint, epoch)) {
            return Some(Arc::clone(&slot.0));
        }
        self.overflow()
            .plans
            .get(&(fingerprint, epoch))
            .map(|s| Arc::clone(&s.0))
    }

    /// Stores a type-erased plan under `(fingerprint, epoch)` in the
    /// overlay (the frozen snapshot is never mutated).
    pub fn store_plan(&self, fingerprint: u64, epoch: u64, plan: Arc<dyn Any + Send + Sync>) {
        self.overflow()
            .plans
            .insert((fingerprint, epoch), PlanSlot(plan));
    }

    /// Number of distinct values known (frozen watermark plus overlay).
    pub fn dict_len(&self) -> usize {
        if !self.has_overflow.load(Ordering::Acquire) {
            return self.base_len;
        }
        self.base_len + self.overflow().values.len()
    }

    /// The frozen watermark: ids below this decode without any lock.
    pub fn frozen_len(&self) -> usize {
        self.base_len
    }

    /// Whether any post-freeze value has been interned into the overlay.
    pub fn has_overflowed(&self) -> bool {
        self.has_overflow.load(Ordering::Acquire)
    }

    /// Cache counters: build-phase totals at freeze time plus serve-phase
    /// activity since.
    pub fn stats(&self) -> ContextStats {
        ContextStats {
            interned_hits: self.base_stats.interned_hits
                + self.interned_hits.load(Ordering::Relaxed),
            interned_builds: self.base_stats.interned_builds
                + self.interned_builds.load(Ordering::Relaxed),
            derived_hits: self.base_stats.derived_hits + self.derived_hits.load(Ordering::Relaxed),
            derived_builds: self.base_stats.derived_builds
                + self.derived_builds.load(Ordering::Relaxed),
            index_hits: self.base_stats.index_hits + self.index_hits.load(Ordering::Relaxed),
            index_builds: self.base_stats.index_builds + self.index_builds.load(Ordering::Relaxed),
        }
    }
}

/// A two-phase context handle: either a mutable build-phase
/// [`EvalContext`] or an immutable serve-phase [`FrozenContext`]. Cloning
/// is an `Arc` bump; both variants are `Send + Sync`, and the full context
/// API delegates to whichever phase is active, so pipelines are written
/// once and run in either phase.
#[derive(Clone, Debug)]
pub enum CtxView {
    /// The mutable build phase (mutex-guarded state).
    Build(Arc<EvalContext>),
    /// The immutable serve phase (lock-free snapshot reads).
    Frozen(Arc<FrozenContext>),
}

impl CtxView {
    /// A fresh build-phase view over an empty context.
    pub fn new() -> CtxView {
        CtxView::Build(Arc::new(EvalContext::new()))
    }

    /// A serve-phase view: snapshots a build-phase context (see
    /// [`EvalContext::freeze`]); freezing an already-frozen view is a
    /// cheap handle clone.
    #[must_use]
    pub fn freeze(&self) -> CtxView {
        match self {
            CtxView::Build(ctx) => CtxView::Frozen(ctx.freeze()),
            CtxView::Frozen(f) => CtxView::Frozen(Arc::clone(f)),
        }
    }

    /// Whether this view is a frozen snapshot.
    pub fn is_frozen(&self) -> bool {
        matches!(self, CtxView::Frozen(_))
    }

    /// Interns one value.
    #[inline]
    pub fn intern(&self, v: Value) -> ValueId {
        match self {
            CtxView::Build(c) => c.intern(v),
            CtxView::Frozen(f) => f.intern(v),
        }
    }

    /// The id of `v` if the session has seen it (no allocation).
    #[inline]
    pub fn lookup(&self, v: Value) -> Option<ValueId> {
        match self {
            CtxView::Build(c) => c.lookup(v),
            CtxView::Frozen(f) => f.lookup(v),
        }
    }

    /// Decodes one id.
    #[inline]
    pub fn decode(&self, id: ValueId) -> Value {
        match self {
            CtxView::Build(c) => c.decode(id),
            CtxView::Frozen(f) => f.decode(id),
        }
    }

    /// Decodes a sequence of ids into an answer [`Tuple`].
    #[inline]
    pub fn decode_tuple<I: IntoIterator<Item = ValueId>>(&self, ids: I) -> Tuple {
        match self {
            CtxView::Build(c) => c.decode_tuple(ids),
            CtxView::Frozen(f) => f.decode_tuple(ids),
        }
    }

    /// Decodes a flat run of id rows (`width` ids per row).
    pub fn decode_rows(&self, width: usize, ids: &[ValueId]) -> Vec<Tuple> {
        match self {
            CtxView::Build(c) => c.decode_rows(width, ids),
            CtxView::Frozen(f) => f.decode_rows(width, ids),
        }
    }

    /// Decodes an interned relation back to a row-major [`Relation`].
    pub fn decode_rel(&self, rel: &IdRel) -> Relation {
        match self {
            CtxView::Build(c) => c.decode_rel(rel),
            CtxView::Frozen(f) => f.decode_rel(rel),
        }
    }

    /// Looks up every value of `row` into `out` without interning.
    pub fn lookup_row(&self, row: &[Value], out: &mut Vec<ValueId>) -> bool {
        match self {
            CtxView::Build(c) => c.lookup_row(row, out),
            CtxView::Frozen(f) => f.lookup_row(row, out),
        }
    }

    /// Interns a decoded row into an [`InlineKey`].
    pub fn intern_key(&self, row: &[Value]) -> InlineKey {
        match self {
            CtxView::Build(c) => c.intern_key(row),
            CtxView::Frozen(f) => f.intern_key(row),
        }
    }

    /// The interned columnar mirror of `rel`, built on first request.
    pub fn interned_rel(&self, rel: &Arc<Relation>) -> Arc<IdRel> {
        match self {
            CtxView::Build(c) => c.interned_rel(rel),
            CtxView::Frozen(f) => f.interned_rel(rel),
        }
    }

    /// Registers a pre-interned mirror for `rel` (see
    /// [`EvalContext::register_interned`]).
    pub fn register_interned(&self, rel: &Arc<Relation>, id_rel: Arc<IdRel>) {
        match self {
            CtxView::Build(c) => c.register_interned(rel, id_rel),
            CtxView::Frozen(f) => f.register_interned(rel, id_rel),
        }
    }

    /// A relation derived from `rel` by a pure id-level transformation
    /// (see [`EvalContext::derived_rel`]).
    pub fn derived_rel(
        &self,
        rel: &Arc<Relation>,
        sig: &[u32],
        build: impl FnOnce(&IdRel) -> IdRel,
    ) -> Arc<IdRel> {
        match self {
            CtxView::Build(c) => c.derived_rel(rel, sig, build),
            CtxView::Frozen(f) => f.derived_rel(rel, sig, build),
        }
    }

    /// The cached atom-normalization of `rel` under the rank signature
    /// `sig` (see [`EvalContext::normalized_rel`]). On the build side the
    /// entry keeps its dedup set so delta ingestion can carry it over; a
    /// frozen context builds the same rows into its overlay on a miss.
    pub fn normalized_rel(&self, rel: &Arc<Relation>, sig: &[u32]) -> Arc<IdRel> {
        match self {
            CtxView::Build(c) => c.normalized_rel(rel, sig),
            CtxView::Frozen(f) => {
                f.derived_rel(rel, sig, |base| crate::idrel::normalize_ranked(base, sig).0)
            }
        }
    }

    /// The cached index over `rel` keyed on `key_cols`.
    pub fn index(&self, rel: &Arc<IdRel>, key_cols: &[usize]) -> Arc<HashIndex> {
        match self {
            CtxView::Build(c) => c.index(rel, key_cols),
            CtxView::Frozen(f) => f.index(rel, key_cols),
        }
    }

    /// The cached [`RelStats`] of `rel`, computed on first request.
    pub fn rel_stats(&self, rel: &Arc<IdRel>) -> Arc<RelStats> {
        match self {
            CtxView::Build(c) => c.rel_stats(rel),
            CtxView::Frozen(f) => f.rel_stats(rel),
        }
    }

    /// Appends `delta` to `rel`, returning the new handle (see
    /// [`EvalContext::insert_rows`]). Ingestion is a build-phase operation:
    /// frozen snapshots are immutable, so calling this on a frozen view
    /// panics — route deltas through the session's build context and
    /// publish the result with a re-freeze.
    pub fn insert_rows(&self, rel: &Arc<Relation>, delta: &Relation) -> Arc<Relation> {
        match self {
            CtxView::Build(c) => c.insert_rows(rel, delta),
            CtxView::Frozen(_) => {
                panic!("insert_rows on a frozen snapshot: ingest through the build-phase context")
            }
        }
    }

    /// Tombstones every row of `rel` matching a row of `victims`, returning
    /// the new handle (see [`EvalContext::delete_rows`]). Panics on a
    /// frozen view for the same reason as [`CtxView::insert_rows`].
    pub fn delete_rows(&self, rel: &Arc<Relation>, victims: &Relation) -> Arc<Relation> {
        match self {
            CtxView::Build(c) => c.delete_rows(rel, victims),
            CtxView::Frozen(_) => {
                panic!("delete_rows on a frozen snapshot: ingest through the build-phase context")
            }
        }
    }

    /// Segment/tombstone churn of `rel`'s interned mirror, if it has one
    /// (see [`EvalContext::churn_of`]). Frozen snapshots report `None` —
    /// churn is build-phase bookkeeping.
    pub fn churn_of(&self, rel: &Arc<Relation>) -> Option<RelChurn> {
        match self {
            CtxView::Build(c) => c.churn_of(rel),
            CtxView::Frozen(_) => None,
        }
    }

    /// Cumulative ingestion counters (see [`EvalContext::ingest_stats`]).
    /// Frozen snapshots report zeros — ingestion happens pre-freeze.
    pub fn ingest_stats(&self) -> IngestStats {
        match self {
            CtxView::Build(c) => c.ingest_stats(),
            CtxView::Frozen(_) => IngestStats::default(),
        }
    }

    /// The current stats epoch (see [`EvalContext::stats_epoch`]).
    pub fn stats_epoch(&self) -> u64 {
        match self {
            CtxView::Build(c) => c.stats_epoch(),
            CtxView::Frozen(f) => f.stats_epoch(),
        }
    }

    /// The cached plan stored under `(fingerprint, epoch)`, if any.
    pub fn cached_plan(
        &self,
        fingerprint: u64,
        epoch: u64,
    ) -> Option<Arc<dyn std::any::Any + Send + Sync>> {
        match self {
            CtxView::Build(c) => c.cached_plan(fingerprint, epoch),
            CtxView::Frozen(f) => f.cached_plan(fingerprint, epoch),
        }
    }

    /// Stores a type-erased plan under `(fingerprint, epoch)`.
    pub fn store_plan(
        &self,
        fingerprint: u64,
        epoch: u64,
        plan: Arc<dyn std::any::Any + Send + Sync>,
    ) {
        match self {
            CtxView::Build(c) => c.store_plan(fingerprint, epoch, plan),
            CtxView::Frozen(f) => f.store_plan(fingerprint, epoch, plan),
        }
    }

    /// Number of distinct values interned so far.
    pub fn dict_len(&self) -> usize {
        match self {
            CtxView::Build(c) => c.dict_len(),
            CtxView::Frozen(f) => f.dict_len(),
        }
    }

    /// Snapshot of the cache counters.
    pub fn stats(&self) -> ContextStats {
        match self {
            CtxView::Build(c) => c.stats(),
            CtxView::Frozen(f) => f.stats(),
        }
    }
}

impl Default for CtxView {
    fn default() -> CtxView {
        CtxView::new()
    }
}

impl From<Arc<EvalContext>> for CtxView {
    fn from(ctx: Arc<EvalContext>) -> CtxView {
        CtxView::Build(ctx)
    }
}

impl From<&Arc<EvalContext>> for CtxView {
    fn from(ctx: &Arc<EvalContext>) -> CtxView {
        CtxView::Build(Arc::clone(ctx))
    }
}

impl From<Arc<FrozenContext>> for CtxView {
    fn from(f: Arc<FrozenContext>) -> CtxView {
        CtxView::Frozen(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shared_pairs(pairs: &[(i64, i64)]) -> Arc<Relation> {
        Arc::new(Relation::from_pairs(pairs.iter().copied()))
    }

    #[test]
    fn freeze_preserves_ids_and_caches() {
        let ctx = Arc::new(EvalContext::new());
        let rel = shared_pairs(&[(1, 2), (3, 4)]);
        let id_rel = ctx.interned_rel(&rel);
        let idx = ctx.index(&id_rel, &[0]);
        let id1 = ctx.intern(Value::Int(1));
        let frozen = ctx.freeze();
        // Same ids, same physical cache entries.
        assert_eq!(frozen.lookup(Value::Int(1)), Some(id1));
        assert_eq!(frozen.decode(id1), Value::Int(1));
        assert!(Arc::ptr_eq(&frozen.interned_rel(&rel), &id_rel));
        assert!(Arc::ptr_eq(&frozen.index(&id_rel, &[0]), &idx));
        assert_eq!(frozen.frozen_len(), ctx.dict_len());
        assert!(!frozen.has_overflowed());
    }

    #[test]
    fn post_freeze_misses_fall_back_to_overlay() {
        let ctx = Arc::new(EvalContext::new());
        ctx.intern(Value::Int(1));
        let frozen = ctx.freeze();
        let base = frozen.frozen_len();
        // New value: overlay id at the watermark, decodes correctly.
        let nid = frozen.intern(Value::Int(99));
        assert_eq!(nid.index(), base);
        assert!(frozen.has_overflowed());
        assert_eq!(frozen.decode(nid), Value::Int(99));
        assert_eq!(frozen.lookup(Value::Int(99)), Some(nid));
        assert_eq!(
            frozen.intern(Value::Int(99)),
            nid,
            "overlay interning is stable"
        );
        assert_eq!(frozen.dict_len(), base + 1);
        // The build-phase context is not poisoned by overlay activity.
        assert_eq!(ctx.lookup(Value::Int(99)), None);
        // A relation never seen before the freeze interns via the overlay
        // and caches there.
        let rel = shared_pairs(&[(99, 100), (1, 1)]);
        let a = frozen.interned_rel(&rel);
        let b = frozen.interned_rel(&rel);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(frozen.decode_rel(&a).len(), 2);
        let idx = frozen.index(&a, &[0]);
        assert!(Arc::ptr_eq(&idx, &frozen.index(&a, &[0])));
    }

    #[test]
    fn view_freeze_roundtrip() {
        let view = CtxView::new();
        let rel = shared_pairs(&[(7, 8)]);
        let id_rel = view.interned_rel(&rel);
        let frozen = view.freeze();
        assert!(frozen.is_frozen() && !view.is_frozen());
        assert!(Arc::ptr_eq(&frozen.interned_rel(&rel), &id_rel));
        let tup = frozen.decode_tuple([id_rel.at(0, 0), id_rel.at(0, 1)]);
        assert_eq!(tup, Tuple(vec![Value::Int(7), Value::Int(8)].into()));
        // Freezing a frozen view shares the same snapshot.
        match (&frozen, &frozen.freeze()) {
            (CtxView::Frozen(a), CtxView::Frozen(b)) => assert!(Arc::ptr_eq(a, b)),
            _ => unreachable!(),
        }
    }

    #[test]
    fn freeze_carries_stats_epoch_and_plans() {
        let ctx = Arc::new(EvalContext::new());
        let rel = shared_pairs(&[(1, 2), (1, 3)]);
        let id_rel = ctx.interned_rel(&rel);
        let stats = ctx.rel_stats(&id_rel);
        let plan: Arc<dyn std::any::Any + Send + Sync> = Arc::new("p".to_string());
        let epoch = ctx.stats_epoch();
        ctx.store_plan(11, epoch, plan);
        let frozen = ctx.freeze();
        assert_eq!(frozen.stats_epoch(), epoch);
        assert!(Arc::ptr_eq(&frozen.rel_stats(&id_rel), &stats));
        assert!(frozen.cached_plan(11, epoch).is_some());
        // Post-freeze misses compute/store in the overlay; a new interned
        // relation bumps the frozen epoch.
        let other = shared_pairs(&[(5, 6)]);
        let other_ids = frozen.interned_rel(&other);
        assert!(frozen.stats_epoch() > epoch);
        let s = frozen.rel_stats(&other_ids);
        assert_eq!(s.rows, 1);
        assert!(Arc::ptr_eq(&frozen.rel_stats(&other_ids), &s));
        frozen.store_plan(12, frozen.stats_epoch(), Arc::new(1usize));
        assert!(frozen.cached_plan(12, frozen.stats_epoch()).is_some());
    }

    #[test]
    fn concurrent_overlay_interning_is_consistent() {
        let ctx = Arc::new(EvalContext::new());
        ctx.intern(Value::Int(0));
        let frozen = ctx.freeze();
        let ids: Vec<ValueId> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| s.spawn(|| frozen.intern(Value::Int(424242))))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(
            ids.windows(2).all(|w| w[0] == w[1]),
            "one id per value across threads"
        );
        assert_eq!(frozen.decode(ids[0]), Value::Int(424242));
    }
}
