//! Model-checks the freeze/overflow/watermark protocol of
//! [`FrozenContext`] under exhaustive bounded-preemption schedules.
//!
//! Run with the seam active so the *production* synchronization code
//! yields to the DFS scheduler at every lock/atomic operation:
//!
//! ```text
//! RUSTFLAGS="--cfg ucq_model_check" cargo test -p ucq-storage --test model_check
//! ```
//!
//! The same tests also pass under a plain `cargo test`: the wrapped types
//! then behave exactly like `std::sync`, the scheduler only interleaves at
//! spawn/join boundaries, and the assertions still hold — they are just
//! checked over far fewer schedules. The mutation test at the bottom uses
//! the shuttle primitives directly (not the seam), so it explores the full
//! schedule space under either configuration.

use std::sync::Arc;
use ucq_storage::{CtxView, FrozenContext, Value};

/// A frozen context whose snapshot holds `{1, 2}`.
fn frozen_with_two_values() -> Arc<FrozenContext> {
    let build = CtxView::new();
    build.intern(Value::Int(1));
    build.intern(Value::Int(2));
    match build.freeze() {
        CtxView::Frozen(f) => f,
        CtxView::Build(_) => unreachable!("freeze returned a build view"),
    }
}

/// Two threads interning the same post-freeze value must observe a single
/// id, and that id must decode back — under every explored schedule.
#[test]
fn overlay_intern_race_yields_one_id() {
    let e = shuttle::explore_with(
        shuttle::Config {
            max_schedules: 50_000,
            max_preemptions: 2,
        },
        || {
            let f = frozen_with_two_values();
            let hs: Vec<_> = (0..2)
                .map(|_| {
                    let f = Arc::clone(&f);
                    shuttle::thread::spawn(move || f.intern(Value::Int(77)))
                })
                .collect();
            let ids: Vec<_> = hs.into_iter().map(|h| h.join().unwrap()).collect();
            let decoded = f.decode(ids[0]);
            let looked_up = f.lookup(Value::Int(77));
            (ids, decoded, looked_up)
        },
    );
    assert!(e.schedules > 1, "explored only {} schedules", e.schedules);
    assert!(!e.truncated, "schedule space unexpectedly truncated");
    for (ids, decoded, looked_up) in &e.outcomes {
        assert_eq!(ids[0], ids[1], "racing interns produced distinct ids");
        assert_eq!(*decoded, Value::Int(77), "overlay id failed to decode");
        assert_eq!(*looked_up, Some(ids[0]), "post-quiescence lookup missed");
    }
}

/// The `has_overflowed` flag protocol: a reader racing an interning writer
/// may miss the in-flight value (conservative `None`) but must never
/// observe a wrong id, hang, or panic — and reads of frozen-snapshot ids
/// must stay correct throughout.
#[test]
fn watermark_flag_gates_overlay_reads_consistently() {
    let e = shuttle::explore_with(
        shuttle::Config {
            max_schedules: 50_000,
            max_preemptions: 2,
        },
        || {
            let f = frozen_with_two_values();
            let frozen_id = f.lookup(Value::Int(1)).expect("snapshot value");

            let writer = {
                let f = Arc::clone(&f);
                shuttle::thread::spawn(move || {
                    let id = f.intern(Value::Int(500));
                    // The interning thread itself must immediately be able
                    // to decode its own overlay id.
                    assert_eq!(f.decode(id), Value::Int(500));
                    id
                })
            };
            let reader = {
                let f = Arc::clone(&f);
                shuttle::thread::spawn(move || {
                    let flag = f.has_overflowed();
                    let seen = f.lookup(Value::Int(500));
                    let absent = f.lookup(Value::Int(999));
                    // Frozen ids decode lock-free regardless of the race.
                    let frozen_ok = f.decode(frozen_id) == Value::Int(1);
                    (flag, seen, absent, frozen_ok)
                })
            };
            let written = writer.join().unwrap();
            let (flag, seen, absent, frozen_ok) = reader.join().unwrap();
            (written, flag, seen, absent, frozen_ok)
        },
    );
    assert!(e.schedules > 1, "explored only {} schedules", e.schedules);
    assert!(!e.truncated);
    for (written, flag, seen, absent, frozen_ok) in &e.outcomes {
        assert!(frozen_ok, "frozen-snapshot decode broke during the race");
        assert_eq!(*absent, None, "phantom id for a never-interned value");
        match seen {
            // Conservative miss: the reader ran before the flag/values
            // were published. Allowed.
            None => {}
            // Otherwise it must be exactly the writer's id, and the flag
            // load that *gated* that successful lookup must have been set.
            Some(id) => {
                assert_eq!(id, written, "reader observed a different id");
                let _ = flag; // the flag value itself may predate the write
            }
        }
    }
    // The race must actually be explored in both directions: some
    // schedule observes the overlay value, some schedule misses it.
    let hits = e.outcomes.iter().filter(|o| o.2.is_some()).count();
    assert!(hits > 0, "no schedule observed the published overlay value");
    assert!(
        hits < e.outcomes.len(),
        "no schedule exercised the conservative-miss path"
    );
}

/// `decode_rel`'s invariant (`flag == false` implies the overlay is
/// empty): interning on one thread while another decodes an overlay-id
/// relation through the flag gate.
#[test]
fn decode_rel_during_intern_race_is_complete() {
    let e = shuttle::explore_with(
        shuttle::Config {
            max_schedules: 50_000,
            max_preemptions: 2,
        },
        || {
            let f = frozen_with_two_values();
            // Seed one overlay value *before* the race so the decoded
            // relation spans both the snapshot and the overlay.
            let early = f.intern(Value::Int(300));
            let frozen_id = f.lookup(Value::Int(2)).expect("snapshot value");
            let rel = {
                let mut rel = ucq_storage::IdRel::new(2);
                rel.push_row(&[frozen_id, early]);
                rel
            };
            let writer = {
                let f = Arc::clone(&f);
                shuttle::thread::spawn(move || f.intern(Value::Int(301)))
            };
            let reader = {
                let f = Arc::clone(&f);
                shuttle::thread::spawn(move || f.decode_rel(&rel))
            };
            writer.join().unwrap();
            let decoded = reader.join().unwrap();
            decoded.row(0).to_vec()
        },
    );
    assert!(e.schedules > 1);
    assert!(!e.truncated);
    for row in &e.outcomes {
        assert_eq!(
            row,
            &vec![Value::Int(2), Value::Int(300)],
            "decode_rel dropped or corrupted an overlay value mid-race"
        );
    }
}

/// Satellite equivalence check: the same two-interns-one-id property under
/// *real* concurrency (default 4 threads, honoring `UCQ_PAR_THREADS`),
/// complementing the model-checked variant above.
#[test]
fn overlay_intern_race_real_threads() {
    let threads: usize = std::env::var("UCQ_PAR_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    for round in 0..200 {
        let f = frozen_with_two_values();
        let v = Value::Int(1_000 + round);
        let ids: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads).map(|_| s.spawn(|| f.intern(v))).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(
            ids.windows(2).all(|w| w[0] == w[1]),
            "round {round}: racing interns disagreed: {ids:?}"
        );
        assert_eq!(f.decode(ids[0]), v);
        assert_eq!(f.lookup(v), Some(ids[0]));
    }
}

// ---------------------------------------------------------------------------
// Mutation test: a deliberately broken variant of the protocol.

mod broken_protocol {
    //! A miniature of `FrozenContext`'s overlay publication protocol,
    //! written directly against the shuttle primitives so the checker
    //! explores its full schedule space under any build configuration.
    //!
    //! The *correct* ordering (mirroring `intern_with`) publishes the
    //! value under the lock and only then sets `has_overflow`. The
    //! *broken* ordering sets the flag before the value is published —
    //! exactly the bug class the `Release`-store-last discipline prevents
    //! — and the checker must find the schedule where a reader passes the
    //! flag gate yet finds the overlay empty.

    use shuttle::sync::atomic::{AtomicBool, Ordering};
    use shuttle::sync::{Arc, Mutex};

    struct MiniOverlay {
        values: Mutex<Vec<u32>>,
        has_overflow: AtomicBool,
    }

    impl MiniOverlay {
        fn new() -> Arc<MiniOverlay> {
            Arc::new(MiniOverlay {
                values: Mutex::new(Vec::new()),
                has_overflow: AtomicBool::new(false),
            })
        }

        /// Correct: publish under the lock, then set the flag.
        fn intern_correct(&self, v: u32) {
            let mut g = self.values.lock().unwrap();
            g.push(v);
            self.has_overflow.store(true, Ordering::Release);
        }

        /// Broken mutation: flag first, publish afterwards.
        fn intern_broken(&self, v: u32) {
            self.has_overflow.store(true, Ordering::Release);
            let mut g = self.values.lock().unwrap();
            g.push(v);
        }

        /// Reader through the flag gate, as `decode_rel` does: if the
        /// flag is set, the overlay must already hold the value.
        fn read_gated(&self) -> Option<Option<u32>> {
            if !self.has_overflow.load(Ordering::Acquire) {
                return None; // gate closed: snapshot-only path
            }
            Some(self.values.lock().unwrap().last().copied())
        }
    }

    /// `Some(None)` = the invariant violation: gate open, overlay empty.
    fn explore(broken: bool) -> shuttle::Exploration<Option<Option<u32>>> {
        shuttle::explore_with(
            shuttle::Config {
                max_schedules: 50_000,
                max_preemptions: 2,
            },
            move || {
                let ov = MiniOverlay::new();
                let writer = {
                    let ov = Arc::clone(&ov);
                    shuttle::thread::spawn(move || {
                        if broken {
                            ov.intern_broken(42);
                        } else {
                            ov.intern_correct(42);
                        }
                    })
                };
                let reader = {
                    let ov = Arc::clone(&ov);
                    shuttle::thread::spawn(move || ov.read_gated())
                };
                writer.join().unwrap();
                reader.join().unwrap()
            },
        )
    }

    #[test]
    fn checker_catches_flag_before_publish() {
        let e = explore(true);
        assert!(e.schedules > 1, "explored only {} schedules", e.schedules);
        assert!(!e.truncated);
        assert!(
            e.outcomes.contains(&Some(None)),
            "the seeded flag-before-publish race went undetected \
             across {} schedules",
            e.schedules
        );
    }

    #[test]
    fn correct_protocol_passes_the_same_exploration() {
        let e = explore(false);
        assert!(e.schedules > 1, "explored only {} schedules", e.schedules);
        assert!(!e.truncated);
        assert!(
            !e.outcomes.contains(&Some(None)),
            "correct publish-then-flag ordering flagged as racy"
        );
        // Both sides of the gate must still have been exercised.
        assert!(e.outcomes.contains(&None), "gate-closed path unexplored");
        assert!(
            e.outcomes.contains(&Some(Some(42))),
            "gate-open path unexplored"
        );
    }
}
