//! Homomorphisms between conjunctive queries.
//!
//! * A **body-homomorphism** `h : var(Q2) → var(Q1)` maps every atom
//!   `R(v̄)` of `Q2` to an atom `R(h(v̄))` of `Q1` (Definition 6) — the heads
//!   are unconstrained.
//! * A **(full) homomorphism** additionally preserves the head positionally;
//!   by Chandra–Merlin, `Q1 ⊆ Q2` iff a full homomorphism `Q2 → Q1` exists.
//! * Two CQs are **body-isomorphic** when body-homomorphisms exist in both
//!   directions (Definition 6; for self-join-free queries these are
//!   bijections).
//!
//! Search is plain backtracking over atom assignments; query sizes are
//! constants in the data-complexity setting, so worst-case exponential
//! behavior in the query size is acceptable (and standard: CQ containment is
//! NP-complete).

use crate::cq::{Cq, VarId};
use crate::ucq::Ucq;
use std::collections::HashSet;

/// A total variable mapping from one query's variables to another's,
/// indexed by the source variable id.
pub type VarMap = Vec<VarId>;

/// Applies a mapping to a variable tuple.
pub fn apply_map(map: &VarMap, vars: &[VarId]) -> Vec<VarId> {
    vars.iter().map(|&v| map[v as usize]).collect()
}

/// Enumerates body-homomorphisms from `from` to `to`, up to `cap` distinct
/// variable maps.
pub fn body_homomorphisms(from: &Cq, to: &Cq, cap: usize) -> Vec<VarMap> {
    homomorphisms_with_seed(from, to, &[], cap)
}

/// Whether any body-homomorphism `from → to` exists.
pub fn exists_body_hom(from: &Cq, to: &Cq) -> bool {
    !body_homomorphisms(from, to, 1).is_empty()
}

/// Enumerates homomorphisms from `from` to `to` whose variable map satisfies
/// the given seed constraints `(from_var, to_var)`.
fn homomorphisms_with_seed(from: &Cq, to: &Cq, seed: &[(VarId, VarId)], cap: usize) -> Vec<VarMap> {
    let n_from = from.n_vars() as usize;
    let mut partial: Vec<Option<VarId>> = vec![None; n_from];
    for &(a, b) in seed {
        match partial[a as usize] {
            Some(existing) if existing != b => return Vec::new(),
            _ => partial[a as usize] = Some(b),
        }
    }
    let mut found: Vec<VarMap> = Vec::new();
    let mut seen: HashSet<VarMap> = HashSet::new();
    search_atoms(from, to, 0, &mut partial, &mut found, &mut seen, cap);
    found
}

fn search_atoms(
    from: &Cq,
    to: &Cq,
    atom_idx: usize,
    partial: &mut Vec<Option<VarId>>,
    found: &mut Vec<VarMap>,
    seen: &mut HashSet<VarMap>,
    cap: usize,
) {
    if found.len() >= cap {
        return;
    }
    if atom_idx == from.atoms().len() {
        // All atoms matched. Every variable of `from` occurs in some atom
        // (query invariant), so the map is total.
        let map: VarMap = partial
            .iter()
            .map(|v| v.expect("atom coverage makes the map total"))
            .collect();
        if seen.insert(map.clone()) {
            found.push(map);
        }
        return;
    }
    let atom = &from.atoms()[atom_idx];
    for cand in to.atoms() {
        if cand.rel != atom.rel || cand.args.len() != atom.args.len() {
            continue;
        }
        // Try to unify argument-wise; remember which bindings we added.
        let mut added: Vec<VarId> = Vec::new();
        let mut ok = true;
        for (&fv, &tv) in atom.args.iter().zip(&cand.args) {
            match partial[fv as usize] {
                Some(existing) if existing != tv => {
                    ok = false;
                    break;
                }
                Some(_) => {}
                None => {
                    partial[fv as usize] = Some(tv);
                    added.push(fv);
                }
            }
        }
        if ok {
            search_atoms(from, to, atom_idx + 1, partial, found, seen, cap);
        }
        for v in added {
            partial[v as usize] = None;
        }
        if found.len() >= cap {
            return;
        }
    }
}

/// A witness that `sub ⊆ sup`: a full homomorphism `sup → sub` mapping
/// `head(sup)[i]` to `head(sub)[i]` for every position `i`.
pub fn containment_witness(sub: &Cq, sup: &Cq) -> Option<VarMap> {
    if sub.head().len() != sup.head().len() {
        return None;
    }
    let seed: Vec<(VarId, VarId)> = sup
        .head()
        .iter()
        .copied()
        .zip(sub.head().iter().copied())
        .collect();
    homomorphisms_with_seed(sup, sub, &seed, 1)
        .into_iter()
        .next()
}

/// Whether `sub ⊆ sup` (Chandra–Merlin).
pub fn is_contained_in(sub: &Cq, sup: &Cq) -> bool {
    containment_witness(sub, sup).is_some()
}

/// If `q1` and `q2` are body-isomorphic, returns the body-homomorphism from
/// `q2`'s variables to `q1`'s (the direction used by the §4.2 rewriting).
pub fn body_isomorphism(q1: &Cq, q2: &Cq) -> Option<VarMap> {
    if !exists_body_hom(q1, q2) {
        return None;
    }
    body_homomorphisms(q2, q1, 1).into_iter().next()
}

/// Removes redundant CQs from a union (Example 1): `Qi` is dropped when it
/// is contained in another kept member. Among equivalent members the one
/// with the smallest index is kept. Returns the minimized union and the
/// indexes (into the original) of the kept members.
pub fn minimize_union(ucq: &Ucq) -> (Ucq, Vec<usize>) {
    let cqs = ucq.cqs();
    let n = cqs.len();
    let mut redundant = vec![false; n];
    for i in 0..n {
        for j in 0..n {
            if i == j || redundant[j] {
                continue;
            }
            if is_contained_in(&cqs[i], &cqs[j]) {
                let equivalent = is_contained_in(&cqs[j], &cqs[i]);
                if !equivalent || j < i {
                    redundant[i] = true;
                    break;
                }
            }
        }
    }
    let kept: Vec<usize> = (0..n).filter(|&i| !redundant[i]).collect();
    let minimized = Ucq::new(kept.iter().map(|&i| cqs[i].clone()).collect())
        .expect("non-empty by construction: the ⊆-maximal member is kept");
    (minimized, kept)
}

/// Lemma 16: returns the index of a CQ `Q1` such that for every member `Qi`,
/// either there is no body-homomorphism `Qi → Q1`, or `Q1` and `Qi` are
/// body-isomorphic. Such a member always exists.
pub fn lemma16_representative(ucq: &Ucq) -> usize {
    let cqs = ucq.cqs();
    let n = cqs.len();
    let mut bh = vec![vec![false; n]; n];
    for (i, qi) in cqs.iter().enumerate() {
        for (j, qj) in cqs.iter().enumerate() {
            bh[i][j] = i == j || exists_body_hom(qi, qj);
        }
    }
    if let Some(m) = (0..n).find(|&m| (0..n).all(|i| !bh[i][m] || bh[m][i])) {
        return m;
    }
    unreachable!("Lemma 16 guarantees a representative exists")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cq(text: &str) -> Cq {
        crate::parse::parse_cq(text).unwrap()
    }

    #[test]
    fn identity_is_a_body_hom() {
        let q = cq("Q(x, y) <- R(x, z), S(z, y)");
        let homs = body_homomorphisms(&q, &q, 10);
        assert!(homs.contains(&vec![0, 1, 2]));
    }

    #[test]
    fn example2_body_hom_exists() {
        // Q2 -> Q1 with h(x)=x, h(y)=z, h(w)=y (paper discussion after Thm 12).
        let q1 = cq("Q1(x, y, w) <- R1(x, z), R2(z, y), R3(y, w)");
        let q2 = cq("Q2(x, y, w) <- R1(x, y), R2(y, w)");
        assert!(exists_body_hom(&q2, &q1));
        assert!(!exists_body_hom(&q1, &q2), "R3 has no target in Q2");
        let h = &body_homomorphisms(&q2, &q1, 10)[0];
        // q2 vars: x=0,y=1,w=2; q1 vars: x=0,y=1,w=2,z=3.
        assert_eq!(h, &vec![0, 3, 1]);
    }

    #[test]
    fn example9_no_body_hom_due_to_extra_relation() {
        let q1 = cq("Q1(x, y, w) <- R1(x, z), R2(z, y), R3(y, w)");
        let q2 = cq("Q2(x, y, w) <- R1(x, y), R2(y, w), R4(y)");
        assert!(!exists_body_hom(&q2, &q1));
    }

    #[test]
    fn example1_containment() {
        // Q1 ⊆ Q2 (Example 1): adding R3 only restricts.
        let q1 = cq("Q1(x, y) <- R1(x, y), R2(y, z), R3(z, x)");
        let q2 = cq("Q2(x, y) <- R1(x, y), R2(y, z)");
        assert!(is_contained_in(&q1, &q2));
        assert!(!is_contained_in(&q2, &q1));
        let w = containment_witness(&q1, &q2).unwrap();
        // Witness maps q2's head (x,y) to q1's head (x,y).
        assert_eq!(w[0], 0);
        assert_eq!(w[1], 1);
    }

    #[test]
    fn head_constraint_blocks_containment() {
        // Same bodies, swapped heads: no positional containment.
        let qa = cq("QA(x, y) <- R(x, y)");
        let qb = cq("QB(y, x) <- R(x, y)");
        assert!(!is_contained_in(&qa, &qb));
        assert!(exists_body_hom(&qa, &qb), "bodies are isomorphic");
    }

    #[test]
    fn body_isomorphism_of_example18_pair() {
        let q1 = cq("Q1(x, y) <- R1(x, y), R2(y, u), R3(x, u)");
        let q2 = cq("Q2(x, y) <- R1(y, v), R2(v, x), R3(y, x)");
        let h = body_isomorphism(&q1, &q2).expect("body-isomorphic");
        // h maps q2's vars into q1's; verify it maps atoms correctly:
        // q2: x=0,y=1,v=2; q1: x=0,y=1,u=2.
        // R3(y,x) in q2 -> R3(h(y),h(x)) must be R3(x,u)?? R3 in q1 is (x,u).
        assert_eq!(apply_map(&h, &[1, 0]), vec![0, 2]);
    }

    #[test]
    fn non_isomorphic_same_relations() {
        let q1 = cq("Q1(x, y) <- R1(x, y), R2(y, u), R3(x, u)");
        let q3 = cq("Q3(x, y) <- R1(x, z), R2(y, z)");
        assert!(body_isomorphism(&q1, &q3).is_none());
    }

    #[test]
    fn minimize_drops_example1_redundancy() {
        let u = crate::parse::parse_ucq(
            "Q1(x, y) <- R1(x, y), R2(y, z), R3(z, x)\n\
             Q2(x, y) <- R1(x, y), R2(y, z)",
        )
        .unwrap();
        let (m, kept) = minimize_union(&u);
        assert_eq!(kept, vec![1]);
        assert_eq!(m.len(), 1);
        assert_eq!(m.cqs()[0].name(), "Q2");
    }

    #[test]
    fn minimize_keeps_incomparable_members() {
        let u = crate::parse::parse_ucq(
            "Q1(x, y) <- R(x, y)\n\
             Q2(x, y) <- S(x, y)",
        )
        .unwrap();
        let (_, kept) = minimize_union(&u);
        assert_eq!(kept, vec![0, 1]);
    }

    #[test]
    fn minimize_equivalent_members_keeps_first() {
        let u = crate::parse::parse_ucq(
            "Q1(x, y) <- R(x, y)\n\
             Q2(a, b) <- R(a, b)",
        )
        .unwrap();
        let (m, kept) = minimize_union(&u);
        assert_eq!(kept, vec![0]);
        assert_eq!(m.cqs()[0].name(), "Q1");
    }

    #[test]
    fn lemma16_on_example2() {
        // Body-homs: Q2 -> Q1 but not Q1 -> Q2; the representative must be
        // Q1 (index 0): no body-hom from Q1 to it other than... from Q2
        // there IS one, but then Q1 -> Q2 must also exist for iso — it does
        // not, so the representative is the one nothing maps into: Q2.
        let u = crate::parse::parse_ucq(
            "Q1(x, y, w) <- R1(x, z), R2(z, y), R3(y, w)\n\
             Q2(x, y, w) <- R1(x, y), R2(y, w)",
        )
        .unwrap();
        let m = lemma16_representative(&u);
        // For Q1: body-hom Q2->Q1 exists but Q1->Q2 does not => Q1 fails.
        // For Q2: body-hom Q1->Q2 does not exist => Q2 qualifies.
        assert_eq!(m, 1);
    }

    #[test]
    fn lemma16_on_isomorphic_pair() {
        let u = crate::parse::parse_ucq(
            "Q1(x, y) <- R1(x, y), R2(y, u), R3(x, u)\n\
             Q2(x, y) <- R1(y, v), R2(v, x), R3(y, x)",
        )
        .unwrap();
        let m = lemma16_representative(&u);
        assert!(m == 0 || m == 1, "either member works for an iso pair");
    }

    #[test]
    fn hom_cap_limits_enumeration() {
        let q = cq("Q(x) <- R(x), R(y), R(z)");
        let all = body_homomorphisms(&q, &q, usize::MAX);
        assert_eq!(all.len(), 27);
        let capped = body_homomorphisms(&q, &q, 5);
        assert_eq!(capped.len(), 5);
    }

    #[test]
    fn self_join_free_self_hom_is_identity_only() {
        let q = cq("Q(x, y) <- R1(x, z), R2(z, y)");
        let homs = body_homomorphisms(&q, &q, usize::MAX);
        assert_eq!(homs, vec![vec![0, 1, 2]]);
    }
}
