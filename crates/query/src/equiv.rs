//! Query equivalence and cores.
//!
//! Two CQs are equivalent iff they contain each other (Chandra–Merlin);
//! the *core* of a CQ is a minimal equivalent sub-query, computed by
//! repeatedly dropping atoms that a head-preserving self-endomorphism can
//! fold away. Cores make redundancy elimination canonical: Example 1's
//! `Q1 ⊆ Q2` is the union-level analogue of the atom-level folding here.

use crate::cq::{Cq, VarId};
use crate::hom::is_contained_in;

/// Whether `q1 ≡ q2` (mutual containment).
pub fn is_equivalent(q1: &Cq, q2: &Cq) -> bool {
    is_contained_in(q1, q2) && is_contained_in(q2, q1)
}

/// Computes a core of `q`: an equivalent query using a minimal subset of
/// its atoms. Unused variables are dropped and the remainder renumbered.
///
/// Self-join-free queries are their own cores; the interesting cases have
/// self-joins, e.g. `Q(x) ← R(x,y), R(x,z), S(z)` folds to
/// `Q(x) ← R(x,z), S(z)`.
pub fn core_of(q: &Cq) -> Cq {
    let mut atoms: Vec<usize> = (0..q.atoms().len()).collect();
    // Greedy: try dropping each atom; keep the drop when the smaller query
    // still contains the original (the other containment is trivial since
    // dropping atoms only relaxes).
    let mut i = 0;
    while i < atoms.len() {
        if atoms.len() == 1 {
            break;
        }
        let candidate: Vec<usize> = atoms
            .iter()
            .copied()
            .enumerate()
            .filter_map(|(k, a)| (k != i).then_some(a))
            .collect();
        match subquery(q, &candidate) {
            Some(sub) if is_contained_in(&sub, q) => {
                // `sub ⊆ q` plus the trivial `q ⊆ sub` makes them
                // equivalent; commit the drop.
                atoms = candidate;
                i = 0;
            }
            _ => i += 1,
        }
    }
    subquery(q, &atoms).expect("kept atoms still cover the head")
}

/// Builds the sub-query of `q` keeping the atoms at `keep` (by index),
/// renumbering variables compactly. `None` if the head loses a variable.
fn subquery(q: &Cq, keep: &[usize]) -> Option<Cq> {
    let mut old_to_new: Vec<Option<VarId>> = vec![None; q.n_vars() as usize];
    let mut var_names: Vec<String> = Vec::new();
    let map = |v: VarId, old_to_new: &mut Vec<Option<VarId>>, var_names: &mut Vec<String>| {
        if let Some(n) = old_to_new[v as usize] {
            n
        } else {
            let n = var_names.len() as VarId;
            var_names.push(q.var_name(v).to_string());
            old_to_new[v as usize] = Some(n);
            n
        }
    };
    let atoms: Vec<crate::cq::Atom> = keep
        .iter()
        .map(|&a| {
            let atom = &q.atoms()[a];
            crate::cq::Atom {
                rel: atom.rel.clone(),
                args: atom
                    .args
                    .iter()
                    .map(|&v| map(v, &mut old_to_new, &mut var_names))
                    .collect(),
            }
        })
        .collect();
    // Head variables must all survive.
    let mut head = Vec::with_capacity(q.head().len());
    for &v in q.head() {
        head.push(old_to_new[v as usize]?);
    }
    Cq::new(q.name(), head, atoms, var_names).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_cq;

    #[test]
    fn renamed_queries_are_equivalent() {
        let a = parse_cq("Q(x, y) <- R(x, z), S(z, y)").unwrap();
        let b = parse_cq("Q(u, v) <- R(u, w), S(w, v)").unwrap();
        assert!(is_equivalent(&a, &b));
    }

    #[test]
    fn different_projections_not_equivalent() {
        let a = parse_cq("Q(x) <- R(x, y)").unwrap();
        let b = parse_cq("Q(y) <- R(x, y)").unwrap();
        assert!(!is_equivalent(&a, &b));
    }

    #[test]
    fn core_folds_redundant_self_join() {
        let q = parse_cq("Q(x) <- R(x, y), R(x, z), S(z)").unwrap();
        let core = core_of(&q);
        assert_eq!(core.atoms().len(), 2, "R(x,y) folds into R(x,z)");
        assert!(is_equivalent(&q, &core));
    }

    #[test]
    fn self_join_free_queries_are_their_own_core() {
        let q = parse_cq("Q(x, y) <- R(x, z), S(z, y), T(y)").unwrap();
        let core = core_of(&q);
        assert_eq!(core.atoms().len(), 3);
        assert!(is_equivalent(&q, &core));
    }

    #[test]
    fn core_respects_the_head() {
        // R(x,y) cannot be dropped: y is free.
        let q = parse_cq("Q(x, y) <- R(x, y), R(x, z)").unwrap();
        let core = core_of(&q);
        assert!(core.atoms().len() <= 2);
        assert!(is_equivalent(&q, &core));
        assert_eq!(core.head().len(), 2);
    }

    #[test]
    fn triangle_with_duplicate_edge_atoms() {
        let q = parse_cq("B() <- E(x, y), E(y, z), E(z, x), E(x, x1), E(x1, x2)").unwrap();
        let core = core_of(&q);
        // The pending path E(x,x1),E(x1,x2) folds into the triangle.
        assert_eq!(core.atoms().len(), 3);
        assert!(is_equivalent(&q, &core));
    }

    #[test]
    fn core_is_idempotent() {
        let q = parse_cq("Q(x) <- R(x, y), R(x, z), S(z)").unwrap();
        let once = core_of(&q);
        let twice = core_of(&once);
        assert_eq!(once.atoms().len(), twice.atoms().len());
    }
}
