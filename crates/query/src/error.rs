//! Error type for query construction and parsing.

use std::fmt;

/// An error raised while constructing or parsing a query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryError {
    msg: String,
}

impl QueryError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> QueryError {
        QueryError { msg: msg.into() }
    }

    /// The error message.
    pub fn message(&self) -> &str {
        &self.msg
    }
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "query error: {}", self.msg)
    }
}

impl std::error::Error for QueryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_message() {
        let e = QueryError::new("boom");
        assert_eq!(e.to_string(), "query error: boom");
        assert_eq!(e.message(), "boom");
    }
}
