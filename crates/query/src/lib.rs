//! Query model for the `ucq-enum` workspace: conjunctive queries, unions of
//! conjunctive queries, a small text parser, and the homomorphism machinery
//! (containment, redundancy, body-isomorphism) from §2 and Definition 6 of
//! Carmeli & Kröll (PODS 2019).

#![forbid(unsafe_code)]

pub mod cq;
pub mod equiv;
pub mod error;
pub mod hom;
pub mod parse;
pub mod ucq;

pub use cq::{Atom, Cq, VarId};
pub use equiv::{core_of, is_equivalent};
pub use error::QueryError;
pub use hom::{
    apply_map, body_homomorphisms, body_isomorphism, containment_witness, exists_body_hom,
    is_contained_in, lemma16_representative, minimize_union, VarMap,
};
pub use parse::{parse_cq, parse_ucq};
pub use ucq::Ucq;
