//! A small text syntax for CQs and UCQs.
//!
//! Grammar (one rule per line; `.` terminators and blank lines optional):
//!
//! ```text
//! Q1(x, y, w) <- R1(x, z), R2(z, y), R3(y, w)
//! Q2(x, y, w) <- R1(x, y), R2(y, w)
//! ```
//!
//! `<-` may be written `:-` as in Datalog. Identifiers are
//! `[A-Za-z_][A-Za-z0-9_']*`, so primed variables like `z1'` work too.

use crate::cq::{Atom, Cq, VarId};
use crate::error::QueryError;
use crate::ucq::Ucq;
use std::collections::HashMap;

/// Parses a single CQ rule.
pub fn parse_cq(input: &str) -> Result<Cq, QueryError> {
    let mut p = Parser::new(input);
    let cq = p.rule()?;
    p.skip_ws_and_dots();
    if !p.at_end() {
        return Err(p.err("trailing input after rule"));
    }
    Ok(cq)
}

/// Parses a UCQ: one rule per line (or separated by `.`/`;`).
pub fn parse_ucq(input: &str) -> Result<Ucq, QueryError> {
    let mut p = Parser::new(input);
    let mut cqs = Vec::new();
    loop {
        p.skip_ws_and_dots();
        if p.at_end() {
            break;
        }
        cqs.push(p.rule()?);
    }
    Ucq::new(cqs)
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Parser<'a> {
        Parser {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> QueryError {
        QueryError::new(format!("parse error at byte {}: {msg}", self.pos))
    }

    fn at_end(&self) -> bool {
        self.pos >= self.src.len()
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while let Some(c) = self.peek() {
            if c.is_ascii_whitespace() {
                self.pos += 1;
            } else if c == b'%' || c == b'#' {
                // Comment to end of line.
                while let Some(c) = self.peek() {
                    self.pos += 1;
                    if c == b'\n' {
                        break;
                    }
                }
            } else {
                break;
            }
        }
    }

    fn skip_ws_and_dots(&mut self) {
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'.') | Some(b';') => self.pos += 1,
                _ => break,
            }
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), QueryError> {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn ident(&mut self) -> Result<&'a str, QueryError> {
        self.skip_ws();
        let start = self.pos;
        match self.peek() {
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => self.pos += 1,
            _ => return Err(self.err("expected identifier")),
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'\'' {
                self.pos += 1;
            } else {
                break;
            }
        }
        Ok(std::str::from_utf8(&self.src[start..self.pos]).expect("ascii input"))
    }

    fn var_list(&mut self) -> Result<Vec<&'a str>, QueryError> {
        self.expect(b'(')?;
        let mut vars = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b')') {
            self.pos += 1;
            return Ok(vars);
        }
        loop {
            vars.push(self.ident()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b')') => {
                    self.pos += 1;
                    break;
                }
                _ => return Err(self.err("expected ',' or ')'")),
            }
        }
        Ok(vars)
    }

    fn arrow(&mut self) -> Result<(), QueryError> {
        self.skip_ws();
        let rest = &self.src[self.pos..];
        if rest.starts_with(b"<-") || rest.starts_with(b":-") {
            self.pos += 2;
            Ok(())
        } else {
            Err(self.err("expected '<-' or ':-'"))
        }
    }

    fn rule(&mut self) -> Result<Cq, QueryError> {
        let name = self.ident()?.to_string();
        let head_vars = self.var_list()?;
        self.arrow()?;

        let mut var_names: Vec<String> = Vec::new();
        let mut ids: HashMap<String, VarId> = HashMap::new();
        let mut intern = |v: &str, var_names: &mut Vec<String>| -> VarId {
            *ids.entry(v.to_string()).or_insert_with(|| {
                var_names.push(v.to_string());
                (var_names.len() - 1) as VarId
            })
        };
        let head: Vec<VarId> = head_vars
            .iter()
            .map(|v| intern(v, &mut var_names))
            .collect();

        let mut atoms = Vec::new();
        loop {
            let rel = self.ident()?.to_string();
            let args = self
                .var_list()?
                .iter()
                .map(|v| intern(v, &mut var_names))
                .collect();
            atoms.push(Atom { rel, args });
            self.skip_ws();
            if self.peek() == Some(b',') {
                self.pos += 1;
            } else {
                break;
            }
        }
        Cq::new(name, head, atoms, var_names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_cq() {
        let q = parse_cq("Q(x, y) <- R(x, z), S(z, y)").unwrap();
        assert_eq!(q.name(), "Q");
        assert_eq!(q.to_string(), "Q(x, y) <- R(x, z), S(z, y)");
    }

    #[test]
    fn parse_datalog_arrow_and_dot() {
        let q = parse_cq("Q(x) :- R(x, y).").unwrap();
        assert_eq!(q.atoms().len(), 1);
    }

    #[test]
    fn parse_boolean_head() {
        let q = parse_cq("B() <- R(x, y)").unwrap();
        assert_eq!(q.head().len(), 0);
    }

    #[test]
    fn parse_example2_ucq() {
        let u = parse_ucq(
            "Q1(x, y, w) <- R1(x, z), R2(z, y), R3(y, w)\n\
             Q2(x, y, w) <- R1(x, y), R2(y, w)",
        )
        .unwrap();
        assert_eq!(u.len(), 2);
        assert!(!u.cqs()[0].is_free_connex());
        assert!(u.cqs()[1].is_free_connex());
    }

    #[test]
    fn parse_with_comments_and_blank_lines() {
        let u =
            parse_ucq("% the easy one\nQ1(x) <- R(x, y).\n\n# the other\nQ2(a) <- S(a).").unwrap();
        assert_eq!(u.len(), 2);
    }

    #[test]
    fn parse_primed_variables() {
        let q = parse_cq("Q(x') <- R(x', z1')").unwrap();
        assert_eq!(q.var_name(0), "x'");
    }

    #[test]
    fn reject_trailing_garbage() {
        assert!(parse_cq("Q(x) <- R(x) garbage").is_err());
    }

    #[test]
    fn reject_missing_arrow() {
        assert!(parse_cq("Q(x) R(x)").is_err());
    }

    #[test]
    fn reject_unsafe_rule() {
        assert!(parse_cq("Q(w) <- R(x)").is_err());
    }

    #[test]
    fn reject_unbalanced_parens() {
        assert!(parse_cq("Q(x <- R(x)").is_err());
    }

    #[test]
    fn display_parse_roundtrip() {
        let text = "Q1(x, y, w) <- R1(x, z), R2(z, y), R3(y, w)";
        let q = parse_cq(text).unwrap();
        let q2 = parse_cq(&q.to_string()).unwrap();
        assert_eq!(q, q2);
    }
}
