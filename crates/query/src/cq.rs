//! Conjunctive queries.

use crate::error::QueryError;
use std::collections::HashMap;
use ucq_hypergraph::{free_paths, is_acyclic, is_s_connex, FreePath, Hypergraph, VSet};

/// A variable identifier, local to one query (index into its name table).
pub type VarId = u32;

/// An atom `R(v1, …, vk)`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Atom {
    /// Relation symbol.
    pub rel: String,
    /// Argument variables (repeats allowed).
    pub args: Vec<VarId>,
}

impl Atom {
    /// The set of variables occurring in the atom.
    pub fn var_set(&self) -> VSet {
        self.args.iter().copied().collect()
    }
}

/// A conjunctive query `Q(p̄) ← R1(v̄1), …, Rm(v̄m)`.
///
/// Invariants enforced at construction:
/// * at least one atom, every atom has arity ≥ 1;
/// * at most 64 variables;
/// * every variable occurs in at least one atom (in particular the query is
///   *safe*: head variables occur in the body);
/// * head entries are valid variable ids (repeats in the head are allowed).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cq {
    name: String,
    head: Vec<VarId>,
    atoms: Vec<Atom>,
    var_names: Vec<String>,
}

impl Cq {
    /// Creates a query from raw parts, validating the invariants above.
    pub fn new(
        name: impl Into<String>,
        head: Vec<VarId>,
        atoms: Vec<Atom>,
        var_names: Vec<String>,
    ) -> Result<Cq, QueryError> {
        let name = name.into();
        if atoms.is_empty() {
            return Err(QueryError::new(format!(
                "{name}: a CQ needs at least one atom"
            )));
        }
        if var_names.len() > ucq_hypergraph::MAX_VERTICES {
            return Err(QueryError::new(format!(
                "{name}: at most {} variables are supported, got {}",
                ucq_hypergraph::MAX_VERTICES,
                var_names.len()
            )));
        }
        let n = var_names.len() as u32;
        let mut occurs = VSet::EMPTY;
        for atom in &atoms {
            if atom.args.is_empty() {
                return Err(QueryError::new(format!(
                    "{name}: atom {} has arity 0",
                    atom.rel
                )));
            }
            for &v in &atom.args {
                if v >= n {
                    return Err(QueryError::new(format!(
                        "{name}: atom {} uses undeclared variable id {v}",
                        atom.rel
                    )));
                }
                occurs = occurs.insert(v);
            }
        }
        for &v in &head {
            if v >= n {
                return Err(QueryError::new(format!(
                    "{name}: head uses undeclared variable id {v}"
                )));
            }
            if !occurs.contains(v) {
                return Err(QueryError::new(format!(
                    "{name}: head variable {} does not occur in the body (unsafe query)",
                    var_names[v as usize]
                )));
            }
        }
        if occurs != VSet::full(n) {
            let missing: Vec<&str> = VSet::full(n)
                .diff(occurs)
                .iter()
                .map(|v| var_names[v as usize].as_str())
                .collect();
            return Err(QueryError::new(format!(
                "{name}: variables {missing:?} occur in no atom"
            )));
        }
        Ok(Cq {
            name,
            head,
            atoms,
            var_names,
        })
    }

    /// Ergonomic name-based constructor used throughout tests and the paper
    /// catalog:
    ///
    /// ```
    /// use ucq_query::Cq;
    /// let q = Cq::build("Q", &["x", "y"], &[("R", &["x", "z"]), ("S", &["z", "y"])]).unwrap();
    /// assert_eq!(q.n_vars(), 3);
    /// ```
    pub fn build(name: &str, head: &[&str], atoms: &[(&str, &[&str])]) -> Result<Cq, QueryError> {
        let mut var_names: Vec<String> = Vec::new();
        let mut ids: HashMap<String, VarId> = HashMap::new();
        let mut intern = |v: &str, var_names: &mut Vec<String>| -> VarId {
            *ids.entry(v.to_string()).or_insert_with(|| {
                var_names.push(v.to_string());
                (var_names.len() - 1) as VarId
            })
        };
        let head_ids: Vec<VarId> = head.iter().map(|v| intern(v, &mut var_names)).collect();
        let atom_list: Vec<Atom> = atoms
            .iter()
            .map(|(rel, args)| Atom {
                rel: rel.to_string(),
                args: args.iter().map(|v| intern(v, &mut var_names)).collect(),
            })
            .collect();
        Cq::new(name, head_ids, atom_list, var_names)
    }

    /// The query's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The head tuple (ordered, possibly with repeated variables).
    pub fn head(&self) -> &[VarId] {
        &self.head
    }

    /// The atoms.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// Number of variables.
    pub fn n_vars(&self) -> u32 {
        self.var_names.len() as u32
    }

    /// The name of variable `v`.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.var_names[v as usize]
    }

    /// All variable names, indexed by id.
    pub fn var_names(&self) -> &[String] {
        &self.var_names
    }

    /// Looks up a variable id by name.
    pub fn var_id(&self, name: &str) -> Option<VarId> {
        self.var_names
            .iter()
            .position(|n| n == name)
            .map(|i| i as VarId)
    }

    /// The set of free variables `free(Q)` (the head, as a set).
    pub fn free(&self) -> VSet {
        self.head.iter().copied().collect()
    }

    /// The set of all variables.
    pub fn all_vars(&self) -> VSet {
        VSet::full(self.n_vars())
    }

    /// The hypergraph `H(Q)`.
    pub fn hypergraph(&self) -> Hypergraph {
        Hypergraph::new(
            self.n_vars(),
            self.atoms.iter().map(Atom::var_set).collect(),
        )
    }

    /// Whether no relation symbol appears in more than one atom.
    pub fn is_self_join_free(&self) -> bool {
        let mut seen = std::collections::HashSet::new();
        self.atoms.iter().all(|a| seen.insert(a.rel.as_str()))
    }

    /// Whether `H(Q)` is acyclic.
    pub fn is_acyclic(&self) -> bool {
        is_acyclic(&self.hypergraph())
    }

    /// Whether the query is free-connex (`H(Q)` and `H(Q) + {free}` acyclic).
    pub fn is_free_connex(&self) -> bool {
        is_s_connex(&self.hypergraph(), self.free())
    }

    /// Whether the query is `S`-connex.
    pub fn is_s_connex(&self, s: VSet) -> bool {
        is_s_connex(&self.hypergraph(), s)
    }

    /// All free-paths of the query.
    pub fn free_paths(&self) -> Vec<FreePath> {
        free_paths(&self.hypergraph(), self.free())
    }

    /// The relation symbols used, in first-occurrence order, deduplicated.
    pub fn relation_names(&self) -> Vec<&str> {
        let mut seen = std::collections::HashSet::new();
        self.atoms
            .iter()
            .filter_map(|a| seen.insert(a.rel.as_str()).then_some(a.rel.as_str()))
            .collect()
    }

    /// Returns a copy with extra atoms appended (used to materialize union
    /// extensions; the caller supplies fresh relation symbols).
    #[must_use]
    pub fn with_extra_atoms(&self, extra: &[Atom]) -> Cq {
        let mut atoms = self.atoms.clone();
        atoms.extend_from_slice(extra);
        Cq::new(
            format!("{}+", self.name),
            self.head.clone(),
            atoms,
            self.var_names.clone(),
        )
        .expect("extension of a valid query stays valid")
    }

    /// Returns a copy with a different head over the same body. Fails if the
    /// new head is unsafe.
    pub fn with_head(&self, head: Vec<VarId>) -> Result<Cq, QueryError> {
        Cq::new(
            self.name.clone(),
            head,
            self.atoms.clone(),
            self.var_names.clone(),
        )
    }
}

impl std::fmt::Display for Cq {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, &v) in self.head.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", self.var_name(v))?;
        }
        write!(f, ") <- ")?;
        for (i, atom) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}(", atom.rel)?;
            for (j, &v) in atom.args.iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", self.var_name(v))?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_interns_variables() {
        let q = Cq::build("Q", &["x", "y"], &[("R", &["x", "z"]), ("S", &["z", "y"])]).unwrap();
        assert_eq!(q.n_vars(), 3);
        assert_eq!(q.var_name(0), "x");
        assert_eq!(q.var_id("z"), Some(2));
        assert_eq!(q.head(), &[0, 1]);
        assert_eq!(q.free(), [0u32, 1].into_iter().collect());
    }

    #[test]
    fn unsafe_head_rejected() {
        let err = Cq::build("Q", &["w"], &[("R", &["x"])]);
        assert!(err.is_err());
    }

    #[test]
    fn no_atoms_rejected() {
        assert!(Cq::build("Q", &[], &[]).is_err());
    }

    #[test]
    fn nullary_atom_rejected() {
        assert!(Cq::build("Q", &[], &[("R", &[])]).is_err());
    }

    #[test]
    fn self_join_detection() {
        let sjf = Cq::build("Q", &["x"], &[("R", &["x", "y"]), ("S", &["y", "x"])]).unwrap();
        assert!(sjf.is_self_join_free());
        let sj = Cq::build("Q", &["x"], &[("R", &["x", "y"]), ("R", &["y", "x"])]).unwrap();
        assert!(!sj.is_self_join_free());
    }

    #[test]
    fn matmul_query_classification() {
        // Π(x,y) <- A(x,z), B(z,y): acyclic, not free-connex.
        let q = Cq::build("Pi", &["x", "y"], &[("A", &["x", "z"]), ("B", &["z", "y"])]).unwrap();
        assert!(q.is_acyclic());
        assert!(!q.is_free_connex());
        assert_eq!(q.free_paths().len(), 1);
    }

    #[test]
    fn triangle_query_is_cyclic() {
        let q = Cq::build(
            "T",
            &["x"],
            &[("R", &["x", "y"]), ("S", &["y", "z"]), ("T", &["z", "x"])],
        )
        .unwrap();
        assert!(!q.is_acyclic());
        assert!(!q.is_free_connex());
    }

    #[test]
    fn full_projection_is_free_connex() {
        let q = Cq::build(
            "Q",
            &["x", "z", "y"],
            &[("A", &["x", "z"]), ("B", &["z", "y"])],
        )
        .unwrap();
        assert!(q.is_free_connex());
    }

    #[test]
    fn boolean_query_allowed() {
        let q = Cq::build("B", &[], &[("R", &["x", "y"])]).unwrap();
        assert_eq!(q.head(), &[] as &[VarId]);
        assert!(q.is_free_connex());
    }

    #[test]
    fn repeated_head_vars_allowed() {
        let q = Cq::build("Q", &["x", "x"], &[("R", &["x"])]).unwrap();
        assert_eq!(q.head(), &[0, 0]);
        assert_eq!(q.free().len(), 1);
    }

    #[test]
    fn with_extra_atoms_extends() {
        let q = Cq::build("Q", &["x", "y"], &[("R", &["x", "z"]), ("S", &["z", "y"])]).unwrap();
        let ext = q.with_extra_atoms(&[Atom {
            rel: "V".into(),
            args: vec![0, 2, 1],
        }]);
        assert_eq!(ext.atoms().len(), 3);
        assert!(ext.is_free_connex(), "Example 2 style extension");
    }

    #[test]
    fn display_roundtrips_shape() {
        let q = Cq::build("Q", &["x", "y"], &[("R", &["x", "z"]), ("S", &["z", "y"])]).unwrap();
        assert_eq!(q.to_string(), "Q(x, y) <- R(x, z), S(z, y)");
    }
}
