//! Unions of conjunctive queries.

use crate::cq::Cq;
use crate::error::QueryError;

/// A union of conjunctive queries `Q = Q1 ∪ … ∪ Qℓ`.
///
/// The paper requires all CQs in a union to share one set of free variables.
/// Each CQ here owns its variable namespace, so we align heads *positionally*
/// (all heads must have the same arity); an answer is the tuple of values the
/// head positions take. This is equivalent to the paper's convention after
/// renaming — see DESIGN.md, adaptation 1.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ucq {
    cqs: Vec<Cq>,
}

impl Ucq {
    /// Creates a union. Requires at least one CQ and equal head arities.
    pub fn new(cqs: Vec<Cq>) -> Result<Ucq, QueryError> {
        if cqs.is_empty() {
            return Err(QueryError::new("a UCQ needs at least one CQ"));
        }
        let arity = cqs[0].head().len();
        for cq in &cqs[1..] {
            if cq.head().len() != arity {
                return Err(QueryError::new(format!(
                    "head arity mismatch: {} has arity {}, expected {}",
                    cq.name(),
                    cq.head().len(),
                    arity
                )));
            }
        }
        Ok(Ucq { cqs })
    }

    /// Wraps a single CQ as a trivial union.
    pub fn single(cq: Cq) -> Ucq {
        Ucq { cqs: vec![cq] }
    }

    /// The member CQs.
    pub fn cqs(&self) -> &[Cq] {
        &self.cqs
    }

    /// Number of member CQs.
    pub fn len(&self) -> usize {
        self.cqs.len()
    }

    /// Always false (constructor enforces ≥ 1 member).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Head arity common to all members.
    pub fn head_arity(&self) -> usize {
        self.cqs[0].head().len()
    }

    /// Whether every member is self-join free.
    pub fn is_self_join_free(&self) -> bool {
        self.cqs.iter().all(Cq::is_self_join_free)
    }

    /// Returns a copy with member `i` replaced.
    #[must_use]
    pub fn with_member(&self, i: usize, cq: Cq) -> Ucq {
        let mut cqs = self.cqs.clone();
        cqs[i] = cq;
        Ucq { cqs }
    }

    /// Returns a copy without member `i`. Panics if it would leave the union
    /// empty.
    #[must_use]
    pub fn without_member(&self, i: usize) -> Ucq {
        assert!(self.cqs.len() > 1, "cannot remove the last CQ");
        let mut cqs = self.cqs.clone();
        cqs.remove(i);
        Ucq { cqs }
    }

    /// A structural fingerprint of the union: member count, and per member
    /// the head variables and atoms (relation name + argument shape).
    /// Member names are deliberately excluded — `Q1(x) <- R(x)` fingerprints
    /// the same however the rule is titled. Stable within a process (used
    /// as half of a plan-cache key, paired with a context's stats epoch);
    /// equal unions always collide, distinct unions collide with ordinary
    /// 64-bit hash probability.
    pub fn fingerprint(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        self.cqs.len().hash(&mut h);
        for cq in &self.cqs {
            cq.head().hash(&mut h);
            cq.atoms().len().hash(&mut h);
            for atom in cq.atoms() {
                atom.rel.hash(&mut h);
                atom.args.hash(&mut h);
            }
        }
        h.finish()
    }

    /// All relation names mentioned anywhere in the union.
    pub fn relation_names(&self) -> Vec<&str> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for cq in &self.cqs {
            for r in cq.relation_names() {
                if seen.insert(r) {
                    out.push(r);
                }
            }
        }
        out
    }
}

impl std::fmt::Display for Ucq {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, cq) in self.cqs.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{cq}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_mismatch_rejected() {
        let q1 = Cq::build("Q1", &["x", "y"], &[("R", &["x", "y"])]).unwrap();
        let q2 = Cq::build("Q2", &["x"], &[("R", &["x", "y"])]).unwrap();
        assert!(Ucq::new(vec![q1, q2]).is_err());
    }

    #[test]
    fn empty_union_rejected() {
        assert!(Ucq::new(vec![]).is_err());
    }

    #[test]
    fn accessors() {
        let q1 = Cq::build("Q1", &["x", "y"], &[("R", &["x", "y"])]).unwrap();
        let q2 = Cq::build("Q2", &["a", "b"], &[("S", &["a", "b"])]).unwrap();
        let u = Ucq::new(vec![q1, q2]).unwrap();
        assert_eq!(u.len(), 2);
        assert_eq!(u.head_arity(), 2);
        assert!(u.is_self_join_free());
        assert_eq!(u.relation_names(), vec!["R", "S"]);
        assert_eq!(u.without_member(0).len(), 1);
    }

    #[test]
    fn single_wraps() {
        let q = Cq::build("Q", &["x"], &[("R", &["x"])]).unwrap();
        assert_eq!(Ucq::single(q).len(), 1);
    }

    #[test]
    fn fingerprint_ignores_names_but_not_structure() {
        let a = Ucq::single(Cq::build("Q1", &["x"], &[("R", &["x", "y"])]).unwrap());
        let b = Ucq::single(Cq::build("Other", &["x"], &[("R", &["x", "y"])]).unwrap());
        assert_eq!(a.fingerprint(), b.fingerprint(), "names don't matter");
        let c = Ucq::single(Cq::build("Q1", &["x"], &[("S", &["x", "y"])]).unwrap());
        assert_ne!(a.fingerprint(), c.fingerprint(), "relation names do");
        let d = Ucq::single(Cq::build("Q1", &["y"], &[("R", &["x", "y"])]).unwrap());
        assert_ne!(a.fingerprint(), d.fingerprint(), "heads do");
        let two = Ucq::new(vec![
            Cq::build("Q1", &["x"], &[("R", &["x", "y"])]).unwrap(),
            Cq::build("Q2", &["x"], &[("R", &["x", "y"])]).unwrap(),
        ])
        .unwrap();
        assert_ne!(a.fingerprint(), two.fingerprint(), "member count does");
    }
}
