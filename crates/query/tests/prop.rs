//! Property tests for the query layer: parser robustness and round-trips,
//! and semantic soundness of the homomorphism machinery (a containment
//! witness really implies containment on data).

use proptest::prelude::*;
use std::collections::HashSet;
use ucq_query::{body_homomorphisms, core_of, is_contained_in, is_equivalent, parse_cq, Cq};

const VARS: [&str; 5] = ["x", "y", "z", "u", "w"];

fn arb_cq() -> impl Strategy<Value = Cq> {
    let atom = proptest::collection::vec(0..5u32, 1..=3);
    (
        proptest::collection::vec(atom, 1..=4),
        proptest::collection::vec(proptest::bool::ANY, 5),
        // Allow self-joins: relation index chosen from a small pool.
        proptest::collection::vec(0..3u32, 4),
    )
        .prop_filter_map("valid", |(atoms, head_bits, rels)| {
            let used: HashSet<u32> = atoms.iter().flatten().copied().collect();
            let head: Vec<&str> = (0..5u32)
                .filter(|v| head_bits[*v as usize] && used.contains(v))
                .map(|v| VARS[v as usize])
                .collect();
            let specs: Vec<(String, Vec<&str>)> = atoms
                .iter()
                .enumerate()
                .map(|(i, args)| {
                    (
                        format!("R{}_{}", rels[i % rels.len()], args.len()),
                        args.iter().map(|&v| VARS[v as usize]).collect(),
                    )
                })
                .collect();
            let refs: Vec<(&str, &[&str])> = specs
                .iter()
                .map(|(n, a)| (n.as_str(), a.as_slice()))
                .collect();
            Cq::build("Q", &head, &refs).ok()
        })
}

/// A tiny semantic evaluator over variable maps, independent of the main
/// engines: answers = head projections of all satisfying assignments. Used
/// as ground truth for containment checks.
fn brute_answers(
    q: &Cq,
    data: &std::collections::HashMap<String, Vec<Vec<i64>>>,
) -> HashSet<Vec<i64>> {
    let n = q.n_vars() as usize;
    let mut out = HashSet::new();
    let mut binding = vec![0i64; n];
    fn rec(
        q: &Cq,
        data: &std::collections::HashMap<String, Vec<Vec<i64>>>,
        atom_idx: usize,
        binding: &mut Vec<i64>,
        bound: &mut Vec<bool>,
        out: &mut HashSet<Vec<i64>>,
    ) {
        if atom_idx == q.atoms().len() {
            out.insert(q.head().iter().map(|&v| binding[v as usize]).collect());
            return;
        }
        let atom = &q.atoms()[atom_idx];
        let empty = Vec::new();
        let rows = data.get(&atom.rel).unwrap_or(&empty);
        for row in rows {
            if row.len() != atom.args.len() {
                continue;
            }
            let mut newly: Vec<usize> = Vec::new();
            let mut ok = true;
            for (&v, &val) in atom.args.iter().zip(row) {
                if bound[v as usize] {
                    if binding[v as usize] != val {
                        ok = false;
                        break;
                    }
                } else {
                    bound[v as usize] = true;
                    binding[v as usize] = val;
                    newly.push(v as usize);
                }
            }
            if ok {
                rec(q, data, atom_idx + 1, binding, bound, out);
            }
            for v in newly {
                bound[v] = false;
            }
        }
    }
    let mut bound = vec![false; n];
    rec(q, data, 0, &mut binding, &mut bound, &mut out);
    out
}

fn arb_data(
    queries: Vec<Cq>,
) -> impl Strategy<Value = std::collections::HashMap<String, Vec<Vec<i64>>>> {
    let mut specs: Vec<(String, usize)> = Vec::new();
    for q in &queries {
        for a in q.atoms() {
            if !specs.iter().any(|(n, _)| *n == a.rel) {
                specs.push((a.rel.clone(), a.args.len()));
            }
        }
    }
    let mut strategies = Vec::new();
    for (name, arity) in specs {
        let rows = proptest::collection::vec(proptest::collection::vec(0i64..3, arity), 0..8);
        strategies.push(rows.prop_map(move |rows| (name.clone(), rows)));
    }
    strategies.prop_map(|pairs| pairs.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Display → parse is the identity.
    #[test]
    fn display_parse_roundtrip(q in arb_cq()) {
        let text = q.to_string();
        let reparsed = parse_cq(&text).expect("display output parses");
        prop_assert_eq!(q, reparsed);
    }

    /// The parser never panics on arbitrary input.
    #[test]
    fn parser_never_panics(s in "\\PC{0,60}") {
        let _ = parse_cq(&s);
        let _ = ucq_query::parse_ucq(&s);
    }

    /// A containment witness is semantically sound: q1 ⊆ q2 syntactically
    /// implies q1's answers are q2's answers on random data.
    #[test]
    fn containment_witness_is_sound(
        (qs, data) in (arb_cq(), arb_cq())
            .prop_map(|(a, b)| vec![a, b])
            .prop_flat_map(|qs| {
                let data = arb_data(qs.clone());
                (Just(qs), data)
            })
    ) {
        let (q1, q2) = (&qs[0], &qs[1]);
        prop_assume!(q1.head().len() == q2.head().len());
        if is_contained_in(q1, q2) {
            let a1 = brute_answers(q1, &data);
            let a2 = brute_answers(q2, &data);
            prop_assert!(a1.is_subset(&a2),
                "witnessed containment violated on data for\n{q1}\n{q2}");
        }
    }

    /// Body-homomorphisms compose with assignments: if h: q2 → q1 and μ
    /// satisfies q1, then μ∘h satisfies q2's body.
    #[test]
    fn body_homs_are_sound(
        (qs, data) in (arb_cq(), arb_cq())
            .prop_map(|(a, b)| vec![a, b])
            .prop_flat_map(|qs| {
                let data = arb_data(qs.clone());
                (Just(qs), data)
            })
    ) {
        let (q1, q2) = (&qs[0], &qs[1]);
        for h in body_homomorphisms(q2, q1, 4) {
            // For every satisfying assignment of q1's body (take its full
            // projections by using a full-head variant), μ∘h satisfies q2.
            let full1 = q1.with_head((0..q1.n_vars()).collect()).expect("full head");
            for mu in brute_answers(&full1, &data) {
                for atom in q2.atoms() {
                    let row: Vec<i64> = atom
                        .args
                        .iter()
                        .map(|&v| mu[h[v as usize] as usize])
                        .collect();
                    let present = data
                        .get(&atom.rel)
                        .map(|rows| rows.contains(&row))
                        .unwrap_or(false);
                    prop_assert!(present, "hom image missing for {q2} -> {q1}");
                }
            }
        }
    }

    /// Cores are equivalent to their query and never larger.
    #[test]
    fn cores_are_equivalent_and_minimal(q in arb_cq()) {
        let core = core_of(&q);
        prop_assert!(core.atoms().len() <= q.atoms().len());
        prop_assert!(is_equivalent(&q, &core));
    }
}
