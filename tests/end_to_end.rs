//! Cross-crate integration tests: parser → classifier → executor →
//! baseline agreement, on paper queries over random instances.

use std::collections::HashSet;
use ucq::prelude::*;
use ucq::workloads::{by_id, catalog, random_instance, InstanceSpec, PaperVerdict};

/// Instance size per relation: small under `cargo test` (debug), larger in
/// release where the engines are ~50x faster.
fn rows() -> usize {
    if cfg!(debug_assertions) {
        220
    } else {
        800
    }
}

/// Every tractable catalog entry evaluates identically to the naive
/// baseline on random instances, duplicate-free, via its DelayClin
/// strategy.
#[test]
fn tractable_catalog_entries_agree_with_naive() {
    for entry in catalog() {
        if entry.verdict != PaperVerdict::Tractable {
            continue;
        }
        let engine = UcqEngine::new(entry.ucq.clone());
        assert_ne!(
            engine.strategy(),
            Strategy::Naive,
            "{} must run in DelayClin",
            entry.id
        );
        for seed in [1u64, 2] {
            let inst = random_instance(&entry.ucq, &InstanceSpec::scaled(rows(), seed));
            let mut ans = engine.enumerate(&inst).expect("pipeline");
            let got = ans.collect_all();
            let set: HashSet<Tuple> = got.iter().cloned().collect();
            assert_eq!(got.len(), set.len(), "{}: duplicates emitted", entry.id);
            let naive: HashSet<Tuple> = engine
                .enumerate_naive(&inst)
                .expect("naive")
                .into_iter()
                .collect();
            assert_eq!(set, naive, "{}: wrong answers (seed {seed})", entry.id);
        }
    }
}

/// Intractable and open entries still evaluate correctly through the
/// fallback.
#[test]
fn hard_catalog_entries_evaluate_via_fallback() {
    for entry in catalog() {
        if entry.verdict == PaperVerdict::Tractable {
            continue;
        }
        let engine = UcqEngine::new(entry.ucq.clone());
        assert_eq!(engine.strategy(), Strategy::Naive, "{}", entry.id);
        let inst = random_instance(&entry.ucq, &InstanceSpec::scaled(rows() / 2, 9));
        let mut ans = engine.enumerate(&inst).expect("fallback");
        let got: HashSet<Tuple> = ans.collect_all().into_iter().collect();
        let naive: HashSet<Tuple> = engine
            .enumerate_naive(&inst)
            .expect("naive")
            .into_iter()
            .collect();
        assert_eq!(got, naive, "{}", entry.id);
    }
}

/// The paper's Example 2 narrative, end to end: Q1 alone is hard, the
/// union is tractable, and removing Q2 flips the verdict.
#[test]
fn example2_narrative() {
    let entry = by_id("example2").unwrap();
    let c_union = classify(&entry.ucq);
    assert!(c_union.is_tractable());

    let q1_alone = Ucq::new(vec![entry.ucq.cqs()[0].clone()]).unwrap();
    let c_q1 = classify(&q1_alone);
    assert!(c_q1.is_intractable());
    if let Verdict::Intractable { witness } = &c_q1.verdict {
        assert_eq!(witness.hypothesis(), Hypothesis::MatMul);
    }
}

/// Parsing, display, and reparsing round-trip for the whole catalog.
#[test]
fn catalog_display_roundtrip() {
    for entry in catalog() {
        let text = entry.ucq.to_string();
        let reparsed = parse_ucq(&text).expect("display output reparses");
        assert_eq!(reparsed, entry.ucq, "{}", entry.id);
    }
}

/// The three evaluation strategies coexist: the engine picks Algorithm 1
/// for pure free-connex unions, the pipeline for union extensions, naive
/// for the rest.
#[test]
fn strategy_selection_matrix() {
    let alg1 = UcqEngine::new(by_id("two_free_connex").unwrap().ucq);
    assert_eq!(alg1.strategy(), Strategy::Algorithm1);
    let pipe = UcqEngine::new(by_id("example2").unwrap().ucq);
    assert_eq!(pipe.strategy(), Strategy::UnionExtension);
    let naive = UcqEngine::new(by_id("example20").unwrap().ucq);
    assert_eq!(naive.strategy(), Strategy::Naive);
}

/// Delay instrumentation smoke test: the pipeline's delays are measured
/// and the answer stream is complete.
#[test]
fn measured_enumeration_is_complete() {
    let entry = by_id("example2").unwrap();
    let engine = UcqEngine::new(entry.ucq.clone());
    let inst = random_instance(&entry.ucq, &InstanceSpec::scaled(rows() * 4, 4));
    let (answers, prof) = measure(|| engine.enumerate(&inst).expect("pipeline"));
    assert_eq!(prof.count(), answers.len());
    let naive = engine.enumerate_naive(&inst).expect("naive");
    assert_eq!(answers.len(), naive.len());
}
