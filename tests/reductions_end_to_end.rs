//! Integration tests for the executable lower bounds: the reductions'
//! query-side computations agree with direct combinatorial algorithms
//! across a spread of random inputs.

use ucq::reductions::{
    bmm_via_cq, bmm_via_example20, has_4clique_via_example22, has_4clique_via_example31,
    has_4clique_via_example39, has_triangle_via_example18, BoolMat, Graph,
};

#[test]
fn bmm_routes_agree_across_densities() {
    for (n, d) in [(16usize, 0.05), (24, 0.15), (32, 0.3)] {
        let a = BoolMat::random(n, d, n as u64);
        let b = BoolMat::random(n, d, n as u64 * 7 + 1);
        let direct = a.multiply(&b);
        assert_eq!(bmm_via_cq(&a, &b), direct, "Π route n={n} d={d}");
        assert_eq!(bmm_via_example20(&a, &b), direct, "Ex20 route n={n} d={d}");
    }
}

#[test]
fn triangle_route_agrees_across_densities() {
    for seed in 0..8u64 {
        let n = 20 + (seed as usize % 3) * 10;
        let p = 0.02 + 0.02 * seed as f64;
        let g = Graph::gnp(n, p, seed);
        assert_eq!(
            has_triangle_via_example18(&g),
            g.has_triangle(),
            "n={n} p={p}"
        );
    }
}

#[test]
fn all_three_fourclique_routes_agree() {
    for seed in 0..4u64 {
        let g = Graph::gnp(16, 0.3, seed);
        let direct = g.has_4clique();
        assert_eq!(has_4clique_via_example22(&g), direct, "ex22 seed {seed}");
        assert_eq!(has_4clique_via_example31(&g), direct, "ex31 seed {seed}");
        assert_eq!(has_4clique_via_example39(&g), direct, "ex39 seed {seed}");
    }
}

#[test]
fn planted_structures_are_found() {
    // Plant a 4-clique into a sparse graph.
    let g = Graph::gnp(40, 0.03, 5).with_clique(&[3, 17, 25, 38]);
    assert!(has_4clique_via_example22(&g));
    assert!(has_4clique_via_example31(&g));
    assert!(has_4clique_via_example39(&g));
    assert!(has_triangle_via_example18(&g));
}
