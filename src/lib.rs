//! # ucq — constant-delay enumeration for unions of conjunctive queries
//!
//! A Rust implementation of Carmeli & Kröll, *On the Enumeration Complexity
//! of Unions of Conjunctive Queries* (PODS 2019): free-connex UCQs, union
//! extensions, the `DelayClin` evaluation pipelines (Algorithm 1 and the
//! Theorem 12 pipeline), the classifier with hardness witnesses, and the
//! paper's lower-bound reductions run forward.
//!
//! ## Quickstart
//!
//! ```
//! use ucq::prelude::*;
//!
//! // Example 2 of the paper: Q1 is intractable alone, but the union is
//! // free-connex thanks to Q2 providing {x, z, y}.
//! let union = parse_ucq(
//!     "Q1(x, y, w) <- R1(x, z), R2(z, y), R3(y, w)\n\
//!      Q2(x, y, w) <- R1(x, y), R2(y, w)",
//! ).unwrap();
//!
//! let engine = UcqEngine::new(union);
//! assert!(engine.classification().is_tractable());
//!
//! let instance: Instance = [
//!     ("R1", Relation::from_pairs([(1, 2)])),
//!     ("R2", Relation::from_pairs([(2, 3)])),
//!     ("R3", Relation::from_pairs([(3, 4)])),
//! ].into_iter().collect();
//!
//! let mut answers = engine.enumerate(&instance).unwrap();
//! let all = answers.collect_all();
//! assert!(!all.is_empty());
//!
//! // Serving repeated queries: a session pins the instance and reuses the
//! // linear preprocessing (interned storage, indexes, member engines).
//! let session = engine.session(&instance);
//! for _ in 0..3 {
//!     assert_eq!(session.enumerate().unwrap().collect_all(), all);
//! }
//! ```
//!
//! The workspace crates are re-exported here:
//!
//! | module | contents |
//! |---|---|
//! | [`hypergraph`] | GYO, join trees, ext-S-connex trees, free-paths |
//! | [`storage`] | values, relations, indexes, instances |
//! | [`query`] | CQ/UCQ model, parser, homomorphisms |
//! | [`yannakakis`] | full reducer, CDY enumeration, naive baseline |
//! | [`enumerate`] | id-level block enumerator spine, Cheater's Lemma, delay stats |
//! | [`core`] | classification, union extensions, pipelines |
//! | [`reductions`] | executable lower bounds (BMM, triangles, cliques) |
//! | [`workloads`] | the paper catalog and instance generators |

#![forbid(unsafe_code)]

pub use ucq_core as core;
pub use ucq_enumerate as enumerate;
pub use ucq_hypergraph as hypergraph;
pub use ucq_query as query;
pub use ucq_reductions as reductions;
pub use ucq_storage as storage;
pub use ucq_workloads as workloads;
pub use ucq_yannakakis as yannakakis;

/// The names most programs need.
pub mod prelude {
    pub use ucq_core::{
        classify, Classification, CqStatus, EvalSession, Fd, FdSet, FdUcqEngine, FrozenSession,
        HardnessWitness, Hypothesis, SearchConfig, Strategy, UcqEngine, Verdict,
    };
    pub use ucq_enumerate::{measure, DelayProfile, Enumerator};
    pub use ucq_query::{parse_cq, parse_ucq, Cq, Ucq};
    pub use ucq_storage::{
        CtxView, Dictionary, EvalContext, FrozenContext, Instance, Relation, Tuple, Value, ValueId,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_the_pipeline() {
        let u = parse_ucq("Q(x, y) <- R(x, y)").unwrap();
        let engine = UcqEngine::new(u);
        assert!(engine.classification().is_tractable());
    }
}
